// Package parallel provides the worker-pool engine behind the
// experiment harness. Experiments decompose into independent jobs (one
// per simulated day); the engine fans them out over a configurable
// number of goroutines while keeping results reproducible: every job is
// identified by its index, draws randomness only from a stream derived
// from that index (see dist.RNG.Split with labels), and writes its
// result into a pre-sized slice slot, so the output is bit-for-bit
// identical no matter how many workers run or how they interleave.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"enki/internal/obs"
)

// Engine fans independent jobs out over a pool of goroutines.
//
// The zero value is ready to use and runs with runtime.GOMAXPROCS(0)
// workers. Workers = 1 degenerates to a plain serial loop in index
// order — the reference execution every other worker count must
// reproduce bit-for-bit.
type Engine struct {
	// Workers is the pool size. Zero (or negative) means
	// runtime.GOMAXPROCS(0); one means serial execution.
	Workers int
}

// WorkerCount resolves the configured pool size.
func (e Engine) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs job(i) for every i in [0, n) across the pool and waits
// for completion. Jobs must be independent: they may not communicate,
// and any shared output must be written to distinct, pre-allocated
// slots (job i writes results[i]).
//
// Error handling is deterministic: if any jobs fail, ForEach returns
// the error of the lowest-indexed failing job. After the first observed
// failure the engine stops dispatching new jobs (jobs already running
// finish), so on the error path some jobs may never execute — callers
// treat any error as fatal for the whole experiment.
func (e Engine) ForEach(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if job == nil {
		return fmt.Errorf("parallel: nil job")
	}
	workers := e.WorkerCount()
	if workers > n {
		workers = n
	}

	// Engine metrics: the job and error counters are deterministic on
	// the success path (exactly n jobs run); the busy/queue gauges are
	// instantaneous utilization readings for a live scrape.
	reg := obs.Default()
	jobs := reg.Counter(obs.MetricParallelJobsTotal)
	jobErrs := reg.Counter(obs.MetricParallelJobErrors)
	busy := reg.Gauge(obs.MetricParallelWorkersBusy)
	queue := reg.Gauge(obs.MetricParallelQueueDepth)

	if workers == 1 {
		for i := 0; i < n; i++ {
			queue.Set(float64(n - i - 1))
			busy.Add(1)
			err := job(i)
			busy.Add(-1)
			jobs.Inc()
			if err != nil {
				jobErrs.Inc()
				return err
			}
		}
		return nil
	}

	errs := make([]error, n) // job i owns errs[i]; no lock needed
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				queue.Set(float64(n - i - 1))
				busy.Add(1)
				err := job(i)
				busy.Add(-1)
				jobs.Inc()
				if err != nil {
					errs[i] = err
					jobErrs.Inc()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
