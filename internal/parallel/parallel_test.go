package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		counts := make([]atomic.Int32, n)
		err := Engine{Workers: workers}.ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachIndexedWritesAreDisjoint(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	if err := (Engine{}).ForEach(n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	if err := (Engine{Workers: 1}).ForEach(10, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v not ascending", order)
		}
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	// Serial: job 7 fails first and dispatch stops, so job 42 never runs.
	err := Engine{Workers: 1}.ForEach(100, func(i int) error {
		if i == 7 || i == 42 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 7 failed" {
		t.Errorf("serial: got error %v, want job 7's", err)
	}
	// Pooled: with a single failing job its error must surface
	// regardless of interleaving.
	err = Engine{Workers: 4}.ForEach(100, func(i int) error {
		if i == 7 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 7 failed" {
		t.Errorf("pooled: got error %v, want job 7's", err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	ran := 0
	boom := errors.New("boom")
	err := Engine{Workers: 1}.ForEach(10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if ran != 4 {
		t.Errorf("ran %d jobs after error at index 3, want 4", ran)
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := (Engine{}).ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
	if err := (Engine{}).ForEach(-3, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("negative n should be a no-op, got %v", err)
	}
	if err := (Engine{}).ForEach(1, nil); err == nil {
		t.Error("nil job should be rejected")
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Engine{}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Engine{Workers: -2}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative workers = %d, want GOMAXPROCS", got)
	}
	if got := (Engine{Workers: 3}).WorkerCount(); got != 3 {
		t.Errorf("explicit workers = %d, want 3", got)
	}
}
