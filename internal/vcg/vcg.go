// Package vcg implements a Clarke-pivot VCG mechanism over the same
// day-ahead allocation problem, in the style of Samadi et al.'s DSM
// mechanism that Section II contrasts Enki against.
//
// VCG charges each household the externality it imposes: the optimal
// neighborhood cost with the household present minus the optimal cost
// with it absent. Computing payments therefore requires n+1 optimal
// allocations — the intractability the paper cites as VCG's first
// failure. Its second failure is the lack of exact budget balance: with
// a convex (supermodular) congestion cost the pivot payments
// over-collect, so households in aggregate overpay κ(ω) by an amount
// the mechanism cannot rebate without breaking truthfulness, whereas
// Enki's Eq. 7 collects exactly ξ·κ(ω). This package exists for the
// comparison benches and property tests of exactly those two claims.
package vcg

import (
	"fmt"

	"enki/internal/core"
	"enki/internal/pricing"
	"enki/internal/solver"
)

// Mechanism is a VCG (Clarke pivot) mechanism for the Eq. 2 problem.
type Mechanism struct {
	// Pricer prices hourly load. It must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// Options bounds each of the n+1 optimal solves.
	Options solver.Options
}

// Outcome is the result of running the mechanism for one day.
type Outcome struct {
	Assignments []core.Assignment // welfare-maximizing allocation
	Payments    []float64         // Clarke pivot payments, one per household
	Cost        float64           // κ of the chosen allocation
	Solves      int               // optimal allocations computed (n+1)
	Proven      bool              // whether every solve was proven optimal
}

// Revenue is the mechanism's total income Σ p_i.
func (o Outcome) Revenue() float64 {
	var sum float64
	for _, p := range o.Payments {
		sum += p
	}
	return sum
}

// Imbalance is Σ p_i − κ(ω): how far VCG strays from exact budget
// balance. With supermodular congestion costs it is nonnegative
// (over-collection); either sign breaks the exact balance Enki's Eq. 7
// provides.
func (o Outcome) Imbalance() float64 { return o.Revenue() - o.Cost }

// Run computes the VCG allocation and payments for the reports.
func (m *Mechanism) Run(reports []core.Report) (Outcome, error) {
	if err := core.ValidateReports(reports); err != nil {
		return Outcome{}, err
	}
	if len(reports) == 0 {
		return Outcome{}, fmt.Errorf("vcg: no reports")
	}

	items := make([]solver.Item, len(reports))
	for i, r := range reports {
		items[i] = solver.ItemFromPreference(r.Pref, m.Rating)
	}
	full, err := solver.BranchAndBound(m.Pricer, items, m.Options)
	if err != nil {
		return Outcome{}, fmt.Errorf("vcg: full solve: %w", err)
	}

	intervals := full.Intervals(items)
	assignments := make([]core.Assignment, len(reports))
	for i, r := range reports {
		assignments[i] = core.Assignment{ID: r.ID, Interval: intervals[i]}
	}

	out := Outcome{
		Assignments: assignments,
		Payments:    make([]float64, len(reports)),
		Cost:        full.Cost,
		Solves:      1,
		Proven:      full.Optimal,
	}

	// Clarke pivot. Every allocation fully satisfies each reported
	// window, so valuation terms cancel and the payment reduces to the
	// marginal-cost externality:
	//
	//	p_i = κ(s*) − κ*(−i)
	//
	// where κ*(−i) is the optimal neighborhood cost with i absent.
	for i := range reports {
		if len(reports) == 1 {
			// A lone household imposes no externality.
			out.Payments[i] = 0
			out.Solves++
			continue
		}
		rest := make([]solver.Item, 0, len(items)-1)
		for j, it := range items {
			if j != i {
				rest = append(rest, it)
			}
		}
		without, err := solver.BranchAndBound(m.Pricer, rest, m.Options)
		if err != nil {
			return Outcome{}, fmt.Errorf("vcg: solve without %d: %w", i, err)
		}
		out.Solves++
		out.Proven = out.Proven && without.Optimal

		p := full.Cost - without.Cost
		// Adding a household cannot lower the optimal cost; clamp
		// numerical noise.
		if p < 0 {
			p = 0
		}
		out.Payments[i] = p
	}
	return out, nil
}
