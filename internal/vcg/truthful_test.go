package vcg

import (
	"testing"

	"enki/internal/core"
)

// TestVCGTruthfulness: the defining property of VCG — for a fixed set
// of other reports, no misreport earns a household more utility than
// the truth. Valuation follows Eq. 3 against the true preference;
// allocations always satisfy the *reported* window.
func TestVCGTruthfulness(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	others := []core.Report{
		{ID: 1, Pref: core.MustPreference(18, 22, 2)},
		{ID: 2, Pref: core.MustPreference(17, 21, 2)},
		{ID: 3, Pref: core.MustPreference(19, 23, 2)},
	}
	truth := core.Type{True: core.MustPreference(18, 21, 2), ValuationFactor: 5}

	utility := func(report core.Preference) float64 {
		reports := append([]core.Report{{ID: 0, Pref: report}}, others...)
		out, err := m.Run(reports)
		if err != nil {
			t.Fatal(err)
		}
		valuation := core.ValuationOf(out.Assignments[0].Interval, truth)
		return valuation - out.Payments[0]
	}

	truthful := utility(truth.True)
	misreports := []core.Preference{
		core.MustPreference(18, 20, 2), // narrowed
		core.MustPreference(19, 21, 2), // narrowed right
		core.MustPreference(14, 18, 2), // shifted off the truth
		core.MustPreference(16, 24, 2), // widened beyond the truth
		core.MustPreference(10, 14, 2), // fully disjoint
	}
	for _, mis := range misreports {
		if u := utility(mis); u > truthful+1e-9 {
			t.Errorf("misreport %v earns %g, truth earns %g — VCG truthfulness violated",
				mis, u, truthful)
		}
	}
}

// TestVCGMoreSolvesThanEnki quantifies the tractability contrast the
// paper draws: VCG performs n+1 optimal solves where Enki performs one
// greedy pass.
func TestVCGMoreSolvesThanEnki(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	reports := randomReports(t, 3, 6)
	out, err := m.Run(reports)
	if err != nil {
		t.Fatal(err)
	}
	if out.Solves != len(reports)+1 {
		t.Errorf("VCG ran %d solves, want n+1 = %d", out.Solves, len(reports)+1)
	}
}
