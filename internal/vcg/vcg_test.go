package vcg

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
	"enki/internal/profile"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func randomReports(t *testing.T, seed uint64, n int) []core.Report {
	t.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return profile.WideReports(gen.DrawN(n))
}

func TestRunValidation(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	if _, err := m.Run(nil); err == nil {
		t.Error("empty reports should be rejected")
	}
}

func TestSingleHouseholdPaysNothing(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	out, err := m.Run([]core.Report{{ID: 0, Pref: core.MustPreference(18, 22, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Payments[0] != 0 {
		t.Errorf("lone household pays %g, want 0 (no externality)", out.Payments[0])
	}
}

func TestPaymentsNonnegative(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	for seed := uint64(1); seed <= 6; seed++ {
		out, err := m.Run(randomReports(t, seed, 8))
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range out.Payments {
			if p < 0 {
				t.Errorf("seed %d: payment %d = %g is negative", seed, i, p)
			}
		}
		if out.Solves != 9 {
			t.Errorf("seed %d: solves = %d, want n+1 = 9", seed, out.Solves)
		}
		if !out.Proven {
			t.Errorf("seed %d: small instance should be proven optimal", seed)
		}
	}
}

func TestVCGBreaksExactBudgetBalance(t *testing.T) {
	// The Section I critique: VCG does not balance the budget. With a
	// supermodular congestion cost the pivot payments over-collect
	// (Imbalance > 0) on contested instances — households in aggregate
	// overpay κ(ω), money the mechanism cannot rebate without breaking
	// truthfulness. Enki instead collects exactly ξ·κ(ω).
	m := &Mechanism{Pricer: quad, Rating: 2}
	var imbalanced int
	const trials = 6
	for seed := uint64(10); seed < 10+trials; seed++ {
		out, err := m.Run(randomReports(t, seed, 8))
		if err != nil {
			t.Fatal(err)
		}
		if out.Imbalance() < -1e-9 {
			t.Errorf("seed %d: supermodular pivot payments under-collected by %g", seed, -out.Imbalance())
		}
		if out.Imbalance() > 1e-9 {
			imbalanced++
		}
	}
	if imbalanced == 0 {
		t.Error("expected over-collection on at least one contested instance")
	}
}

func TestExternalityOrdering(t *testing.T) {
	// A household camping on the contested peak owes a larger
	// externality than one alone in the morning.
	reports := []core.Report{
		{ID: 0, Pref: core.MustPreference(18, 20, 2)}, // rigid, on peak
		{ID: 1, Pref: core.MustPreference(18, 20, 2)}, // rigid, on peak
		{ID: 2, Pref: core.MustPreference(8, 12, 2)},  // off peak
	}
	m := &Mechanism{Pricer: quad, Rating: 2}
	out, err := m.Run(reports)
	if err != nil {
		t.Fatal(err)
	}
	if out.Payments[2] >= out.Payments[0] || out.Payments[2] >= out.Payments[1] {
		t.Errorf("off-peak household must pay less: payments %v", out.Payments)
	}
	if out.Payments[0] <= 0 {
		t.Errorf("peak household owes a positive externality, got %g", out.Payments[0])
	}
}

func TestAllocationsAdmitted(t *testing.T) {
	m := &Mechanism{Pricer: quad, Rating: 2}
	reports := randomReports(t, 42, 10)
	out, err := m.Run(reports)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range out.Assignments {
		if !reports[i].Pref.Admits(a.Interval) {
			t.Errorf("assignment %v violates report %v", a.Interval, reports[i].Pref)
		}
	}
	// Cost must match the allocation's load.
	var load core.Load
	for _, a := range out.Assignments {
		load.AddInterval(a.Interval, 2)
	}
	if got := pricing.Cost(quad, load); math.Abs(got-out.Cost) > 1e-6 {
		t.Errorf("outcome cost %g != recomputed %g", out.Cost, got)
	}
}
