package experiment

import (
	"reflect"
	"testing"

	"enki/internal/solver"
	"enki/internal/stats"
	"enki/internal/study"
)

// detConfig is the determinism-test configuration: populations small
// enough that the Optimal solver proves the optimum with an unlimited
// budget (solver.Options{} has no time limit), so no result field
// depends on wall-clock time except the timing columns themselves.
func detConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.Populations = []int{6, 9}
	cfg.Rounds = 3
	cfg.OptimalOptions = solver.Options{}
	return cfg
}

// stripSweepTiming zeroes the wall-clock columns, which are the only
// fields the determinism contract does not cover.
func stripSweepTiming(r *SweepResult) SweepResult {
	c := *r
	c.EnkiTimeMS = nil
	c.OptimalTime = nil
	return c
}

func stripAblationTiming(r *AblationResult) AblationResult {
	c := AblationResult{Title: r.Title, Rows: append([]AblationRow(nil), r.Rows...)}
	for i := range c.Rows {
		c.Rows[i].TimeMS = stats.Interval{}
	}
	return c
}

func stripPricingTiming(r *PricingAblationResult) PricingAblationResult {
	c := PricingAblationResult{Rows: append([]PricingAblationRow(nil), r.Rows...)}
	for i := range c.Rows {
		c.Rows[i].TimeMS = stats.Interval{}
	}
	return c
}

// TestSweepWorkersDeterministic is the engine's core guarantee: the
// sweep is bit-for-bit identical whether it runs serially or on a
// pool, because every job's randomness derives from (Seed, population,
// round), never from scheduling order.
func TestSweepWorkersDeterministic(t *testing.T) {
	serial, err := RunSweep(detConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunSweep(detConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSweepTiming(serial), stripSweepTiming(pooled)) {
		t.Errorf("Workers:8 sweep differs from Workers:1:\nserial: %+v\npooled: %+v",
			stripSweepTiming(serial), stripSweepTiming(pooled))
	}

	again, err := RunSweep(detConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSweepTiming(pooled), stripSweepTiming(again)) {
		t.Error("same seed, same workers: sweep not reproducible")
	}

	other := detConfig(8)
	other.Seed = 12
	diverged, err := RunSweep(other)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(stripSweepTiming(pooled), stripSweepTiming(diverged)) {
		t.Error("different seeds produced identical sweeps")
	}
}

func TestAblationsWorkersDeterministic(t *testing.T) {
	type outputs struct {
		ordering  AblationResult
		pricing   PricingAblationResult
		coalition CoalitionAblationResult
		discount  DiscountAblationResult
	}
	collect := func(workers int) outputs {
		cfg := detConfig(workers)
		ordering, err := RunOrderingAblation(cfg, 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		pricing, err := RunPricingAblation(cfg, 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		coalition, err := RunCoalitionAblation(cfg, 12, 4, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		discount, err := RunDiscountAblation(cfg, 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		return outputs{
			ordering:  stripAblationTiming(ordering),
			pricing:   stripPricingTiming(pricing),
			coalition: *coalition,
			discount:  *discount,
		}
	}
	serial := collect(1)
	pooled := collect(8)
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("Workers:8 ablations differ from Workers:1:\nserial: %+v\npooled: %+v", serial, pooled)
	}
}

func TestFigure7WorkersDeterministic(t *testing.T) {
	fcfg := DefaultFig7Config()
	fcfg.Households = 8
	fcfg.Repeats = 2
	serial, err := RunFigure7(detConfig(1), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunFigure7(detConfig(8), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("Workers:8 figure 7 differs from Workers:1:\nserial: %+v\npooled: %+v", serial, pooled)
	}
}

func TestLearningCurveWorkersDeterministic(t *testing.T) {
	serial, err := RunLearningCurve(detConfig(1), 6, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunLearningCurve(detConfig(8), 6, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("Workers:8 learning curve differs from Workers:1:\nserial: %+v\npooled: %+v", serial, pooled)
	}
}

func TestUtilityComparisonWorkersDeterministic(t *testing.T) {
	serial, err := RunUtilityComparison(detConfig(1), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunUtilityComparison(detConfig(8), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Errorf("Workers:8 utility comparison differs from Workers:1:\nserial: %+v\npooled: %+v", serial, pooled)
	}
}

func TestUserStudyWorkersDeterministic(t *testing.T) {
	collect := func(workers int) *UserStudyResult {
		cfg := detConfig(workers)
		cfg.Seed = 42
		res, err := RunUserStudy(cfg, study.DefaultStudyConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(collect(1), collect(8)) {
		t.Error("Workers:8 user study differs from Workers:1")
	}
}
