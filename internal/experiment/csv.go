package experiment

import (
	"fmt"
	"strings"

	"enki/internal/study"
)

// TablesCSV renders Tables II-IV as one CSV: one row per (table, stage,
// group) cell for easy plotting or regression against the paper.
func (r *UserStudyResult) TablesCSV() string {
	var b strings.Builder
	b.WriteString("table,stage,group,value\n")
	for _, stage := range study.Stages() {
		fmt.Fprintf(&b, "II,%s,all,%g\n", stage.Name, r.TableII[stage.Name])
		fmt.Fprintf(&b, "III,%s,all,%g\n", stage.Name, r.TableIII[stage.Name].P)
		iv := r.TableIV[stage.Name]
		fmt.Fprintf(&b, "IV,%s,T1,%g\n", stage.Name, iv[0])
		fmt.Fprintf(&b, "IV,%s,T2,%g\n", stage.Name, iv[1])
	}
	return b.String()
}

// Figure8CSV renders the per-subject Initial/Cooperate ratios.
func (r *UserStudyResult) Figure8CSV() string {
	var b strings.Builder
	b.WriteString("subject,initial,cooperate\n")
	for _, s := range r.Figure8Subjects {
		fmt.Fprintf(&b, "%d,%g,%g\n", s.Number, s.Initial, s.Cooperate)
	}
	return b.String()
}

// Figure9CSV renders the flexibility-ratio trajectories.
func (r *UserStudyResult) Figure9CSV() string {
	var b strings.Builder
	b.WriteString("round,p7,p8,intermediate\n")
	for i := range r.Figure9P7 {
		fmt.Fprintf(&b, "%d,%g,%g,%g\n", i+1, r.Figure9P7[i], r.Figure9P8[i], r.Figure9Intermediate[i])
	}
	return b.String()
}
