package experiment

import (
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/solver"
	"enki/internal/study"
)

// testConfig returns a laptop-fast configuration that keeps the paper's
// structure (multiple populations, repeated rounds).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Populations = []int{8, 14}
	cfg.Rounds = 3
	cfg.OptimalOptions = solver.Options{TimeLimit: 500 * time.Millisecond, RelGap: 1e-4}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Sigma = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sigma should be rejected")
	}
	bad = DefaultConfig()
	bad.Populations = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty populations should be rejected")
	}
	bad = DefaultConfig()
	bad.Populations = []int{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero population should be rejected")
	}
	bad = DefaultConfig()
	bad.Rounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rounds should be rejected")
	}
}

func TestRunSweepShape(t *testing.T) {
	res, err := RunSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Populations) != 2 {
		t.Fatalf("got %d populations", len(res.Populations))
	}
	for i := range res.Populations {
		// Figure 4/5 claim: Enki tracks Optimal closely from above.
		if res.OptimalCost[i].Mean > res.EnkiCost[i].Mean+1e-9 {
			t.Errorf("pop %d: optimal cost %g exceeds Enki cost %g",
				res.Populations[i], res.OptimalCost[i].Mean, res.EnkiCost[i].Mean)
		}
		if res.EnkiCost[i].Mean > 1.25*res.OptimalCost[i].Mean {
			t.Errorf("pop %d: Enki cost %g strays >25%% from optimal %g",
				res.Populations[i], res.EnkiCost[i].Mean, res.OptimalCost[i].Mean)
		}
		if res.EnkiPAR[i].Mean < 1 || res.OptimalPAR[i].Mean < 1 {
			t.Errorf("pop %d: PAR below 1", res.Populations[i])
		}
		// Figure 6 claim: optimal takes (much) longer than greedy.
		if res.OptimalTime[i].Mean <= res.EnkiTimeMS[i].Mean {
			t.Errorf("pop %d: optimal time %g not above greedy %g",
				res.Populations[i], res.OptimalTime[i].Mean, res.EnkiTimeMS[i].Mean)
		}
		if res.OptimalGapMax[i] < 0 || res.OptimalGapMax[i] > 0.25 {
			t.Errorf("pop %d: gap %g implausible", res.Populations[i], res.OptimalGapMax[i])
		}
	}
	for _, s := range []string{res.RenderFigure4(), res.RenderFigure5(), res.RenderFigure6()} {
		if !strings.Contains(s, "users") {
			t.Errorf("render output missing header:\n%s", s)
		}
	}
	if !strings.Contains(res.CSV(), "users,enki_par") {
		t.Error("CSV missing header")
	}
	if got := strings.Count(res.CSV(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3 (header + 2 rows)", got)
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Populations {
		if a.EnkiPAR[i] != b.EnkiPAR[i] || a.EnkiCost[i] != b.EnkiCost[i] {
			t.Fatalf("sweep not deterministic at population %d", a.Populations[i])
		}
	}
}

func TestRunFigure7TruthIsBestResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	fcfg := DefaultFig7Config()
	fcfg.Households = 30 // faster than 50, same structure
	fcfg.Repeats = 6
	res, err := RunFigure7(cfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16..24 windows of duration ≥ 2: Σ_{w=2..8} (9−w−... ) → count.
	wantCandidates := 0
	for b := 16; b <= 22; b++ {
		wantCandidates += 24 - (b + 2) + 1
	}
	if len(res.Reports) != wantCandidates {
		t.Fatalf("got %d candidate reports, want %d", len(res.Reports), wantCandidates)
	}
	truthU, ok := res.UtilityOf(res.Truth.Window)
	if !ok {
		t.Fatal("truth window missing from candidates")
	}
	best := res.Best()
	// Weak incentive compatibility: no report may beat the truth by a
	// meaningful margin, and the truth must rank at or near the top.
	if best.Utility > truthU+0.05*absF(truthU)+0.05 {
		t.Errorf("report %v with utility %g beats the truth (%g) decisively",
			best.Window, best.Utility, truthU)
	}
	out := res.Render()
	if !strings.Contains(out, "<- true interval") {
		t.Errorf("render misses the truth marker:\n%s", out)
	}
	if !strings.Contains(res.CSV(), "begin,end,utility") {
		t.Error("CSV missing header")
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunFigure7Validation(t *testing.T) {
	cfg := DefaultConfig()
	fcfg := DefaultFig7Config()
	fcfg.Households = 1
	if _, err := RunFigure7(cfg, fcfg); err == nil {
		t.Error("fig7 with one household should be rejected")
	}
	fcfg = DefaultFig7Config()
	fcfg.Repeats = 0
	if _, err := RunFigure7(cfg, fcfg); err == nil {
		t.Error("fig7 with zero repeats should be rejected")
	}
	fcfg = DefaultFig7Config()
	fcfg.Truth = core.Preference{Window: core.Interval{Begin: 20, End: 19}, Duration: 1}
	if _, err := RunFigure7(cfg, fcfg); err == nil {
		t.Error("invalid truth should be rejected")
	}
}

func TestRunUserStudyRenders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	res, err := RunUserStudy(cfg, study.DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TableII) != 4 || len(res.TableIII) != 4 || len(res.TableIV) != 4 {
		t.Fatalf("missing stages: %d/%d/%d", len(res.TableII), len(res.TableIII), len(res.TableIV))
	}
	if len(res.Figure8Subjects) != 16 {
		t.Errorf("figure 8 has %d subjects, want 16", len(res.Figure8Subjects))
	}
	if len(res.Figure9P7) != 16 || len(res.Figure9P8) != 16 || len(res.Figure9Intermediate) != 16 {
		t.Error("figure 9 series must cover all 16 rounds")
	}
	// Table II ordering claim.
	if !(res.TableII["Initial"] > res.TableII["Cooperate"]) {
		t.Errorf("initial defection %g must exceed cooperate %g",
			res.TableII["Initial"], res.TableII["Cooperate"])
	}
	// Table IV claim: T2 defects less in Cooperate.
	iv := res.TableIV["Cooperate"]
	if iv[1] >= iv[0] {
		t.Errorf("T2 cooperate defection %g should be below T1 %g", iv[1], iv[0])
	}
	for name, render := range map[string]string{
		"TableII":  res.RenderTableII(),
		"TableIII": res.RenderTableIII(),
		"TableIV":  res.RenderTableIV(),
		"Figure8":  res.RenderFigure8(),
		"Figure9":  res.RenderFigure9(),
	} {
		if len(render) == 0 {
			t.Errorf("%s render is empty", name)
		}
		if !strings.Contains(render, ":") {
			t.Errorf("%s render missing title:\n%s", name, render)
		}
	}
}

func TestUserStudyCSVExports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	res, err := RunUserStudy(cfg, study.DefaultStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tables := res.TablesCSV()
	if !strings.HasPrefix(tables, "table,stage,group,value\n") {
		t.Errorf("tables CSV header missing:\n%s", tables)
	}
	// 4 stages × (II + III + IV×2) = 16 data rows.
	if got := strings.Count(tables, "\n") - 1; got != 16 {
		t.Errorf("tables CSV has %d data rows, want 16", got)
	}
	fig8 := res.Figure8CSV()
	if got := strings.Count(fig8, "\n") - 1; got != 16 {
		t.Errorf("figure 8 CSV has %d rows, want 16 subjects", got)
	}
	fig9 := res.Figure9CSV()
	if got := strings.Count(fig9, "\n") - 1; got != 16 {
		t.Errorf("figure 9 CSV has %d rows, want 16 rounds", got)
	}
}
