package experiment

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"enki/internal/obs"
	"enki/internal/profile"
	"enki/internal/sched"
	"enki/internal/stats"
)

// SweepResult holds the data behind Figures 4, 5, and 6: per population
// size, the peak-to-average ratio, the neighborhood cost, and the
// scheduling time of Enki's greedy allocator versus the Optimal solver,
// averaged over Rounds simulated days with 95% confidence intervals.
type SweepResult struct {
	Populations []int

	// Per population, aligned with Populations.
	EnkiPAR     []stats.Interval
	OptimalPAR  []stats.Interval
	EnkiCost    []stats.Interval
	OptimalCost []stats.Interval
	EnkiTimeMS  []stats.Interval
	OptimalTime []stats.Interval // milliseconds

	// OptimalGapMax is the largest proven optimality gap the Optimal
	// solver reported per population (0 when every solve was proven).
	OptimalGapMax []float64
}

// sweepCell is the outcome of one (population, round) job.
type sweepCell struct {
	enkiPAR, optPAR   float64
	enkiCost, optCost float64
	enkiMS, optMS     float64
	gap               float64
}

// RunSweep simulates the Section VI-A social-welfare study: for each
// population size, Rounds days are generated (every household
// truthfully reports its wide interval, regenerated each day), and both
// schedulers allocate the same day. Metrics assume compliant
// consumption, as in the paper.
//
// Every (population, round) pair is an independent job fanned out over
// cfg.Workers goroutines. Each job draws from a stream derived from
// (cfg.Seed, population, round), and results land in pre-sized slices
// indexed by job, so the aggregate is bit-for-bit identical for any
// worker count (timing columns aside, which measure wall clock).
func RunSweep(cfg Config) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pricer := cfg.Pricer()

	cells := make([]sweepCell, len(cfg.Populations)*cfg.Rounds)
	err := cfg.engine().ForEach(len(cells), func(job int) error {
		n := cfg.Populations[job/cfg.Rounds]
		round := job % cfg.Rounds
		// The day's trace ID is derived from (seed, population, round)
		// — a pure function of the job, so the exported trace tree
		// replays exactly at any worker count.
		tid := obs.DeriveTraceID(cfg.Seed, labelSweep, uint64(n), uint64(round))
		span := obs.DefaultTracer().StartTrace(tid, obs.SpanSweepDay,
			"pop", strconv.Itoa(n), "round", strconv.Itoa(round))
		defer span.End()
		rng := cfg.jobRNG(labelSweep, uint64(n), uint64(round))

		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			return err
		}
		reports := profile.WideReports(gen.DrawN(n))

		greedy := &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng.Split()}
		allocSpan := span.StartChild(obs.SpanSweepAllocate, obs.LabelScheduler, greedy.Name())
		start := time.Now()
		ga, err := greedy.Allocate(reports)
		allocSpan.End()
		if err != nil {
			return fmt.Errorf("population %d round %d: greedy: %w", n, round, err)
		}
		enkiMS := float64(time.Since(start).Microseconds()) / 1000

		optimal := &sched.Optimal{Pricer: pricer, Rating: cfg.Rating, Options: cfg.OptimalOptions}
		allocSpan = span.StartChild(obs.SpanSweepAllocate, obs.LabelScheduler, optimal.Name())
		start = time.Now()
		oa, err := optimal.Allocate(reports)
		allocSpan.End()
		if err != nil {
			return fmt.Errorf("population %d round %d: optimal: %w", n, round, err)
		}
		optMS := float64(time.Since(start).Microseconds()) / 1000

		gl := sched.LoadOfAssignments(ga, cfg.Rating)
		ol := sched.LoadOfAssignments(oa, cfg.Rating)
		cells[job] = sweepCell{
			enkiPAR:  gl.PAR(),
			optPAR:   ol.PAR(),
			enkiCost: pricer.Sigma * gl.SumSquares(),
			optCost:  pricer.Sigma * ol.SumSquares(),
			enkiMS:   enkiMS,
			optMS:    optMS,
			gap:      optimal.LastResult.Gap(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Populations: append([]int(nil), cfg.Populations...)}
	for pi := range cfg.Populations {
		enkiPAR := make([]float64, cfg.Rounds)
		optPAR := make([]float64, cfg.Rounds)
		enkiCost := make([]float64, cfg.Rounds)
		optCost := make([]float64, cfg.Rounds)
		enkiMS := make([]float64, cfg.Rounds)
		optMS := make([]float64, cfg.Rounds)
		var gapMax float64
		for round := 0; round < cfg.Rounds; round++ {
			c := cells[pi*cfg.Rounds+round]
			enkiPAR[round] = c.enkiPAR
			optPAR[round] = c.optPAR
			enkiCost[round] = c.enkiCost
			optCost[round] = c.optCost
			enkiMS[round] = c.enkiMS
			optMS[round] = c.optMS
			if c.gap > gapMax {
				gapMax = c.gap
			}
		}
		res.EnkiPAR = append(res.EnkiPAR, stats.CI95(enkiPAR))
		res.OptimalPAR = append(res.OptimalPAR, stats.CI95(optPAR))
		res.EnkiCost = append(res.EnkiCost, stats.CI95(enkiCost))
		res.OptimalCost = append(res.OptimalCost, stats.CI95(optCost))
		res.EnkiTimeMS = append(res.EnkiTimeMS, stats.CI95(enkiMS))
		res.OptimalTime = append(res.OptimalTime, stats.CI95(optMS))
		res.OptimalGapMax = append(res.OptimalGapMax, gapMax)
	}
	return res, nil
}

// RenderFigure4 prints the PAR series (Figure 4).
func (r *SweepResult) RenderFigure4() string {
	return r.renderSeries("Figure 4: Peak-to-average ratio (PAR)",
		"PAR", r.EnkiPAR, r.OptimalPAR, "%.3f")
}

// RenderFigure5 prints the neighborhood-cost series (Figure 5).
func (r *SweepResult) RenderFigure5() string {
	return r.renderSeries("Figure 5: Cost to the neighborhood (dollars)",
		"cost", r.EnkiCost, r.OptimalCost, "%.1f")
}

// RenderFigure6 prints the scheduling-time series (Figure 6), plus the
// speedup factor the paper highlights (~600x at n ≥ 40).
func (r *SweepResult) RenderFigure6() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Scheduling time (milliseconds)\n")
	fmt.Fprintf(&b, "%-8s %16s %18s %12s %10s\n", "users", "Enki (ms ±95%)", "Optimal (ms ±95%)", "speedup", "max gap")
	for i, n := range r.Populations {
		speedup := 0.0
		if r.EnkiTimeMS[i].Mean > 0 {
			speedup = r.OptimalTime[i].Mean / r.EnkiTimeMS[i].Mean
		}
		fmt.Fprintf(&b, "%-8d %9.3f ±%5.3f %10.1f ±%5.1f %11.0fx %9.2f%%\n",
			n, r.EnkiTimeMS[i].Mean, r.EnkiTimeMS[i].Half,
			r.OptimalTime[i].Mean, r.OptimalTime[i].Half,
			speedup, 100*r.OptimalGapMax[i])
	}
	return b.String()
}

func (r *SweepResult) renderSeries(title, unit string, enki, optimal []stats.Interval, format string) string {
	cell := func(iv stats.Interval) string {
		return fmt.Sprintf(format+" ±"+format, iv.Mean, iv.Half)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-22s %-22s\n", "users", "Enki "+unit+" (±95%)", "Optimal "+unit+" (±95%)")
	for i, n := range r.Populations {
		fmt.Fprintf(&b, "%-8d %-22s %-22s\n", n, cell(enki[i]), cell(optimal[i]))
	}
	return b.String()
}

// CSV renders the full sweep as CSV for plotting.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("users,enki_par,enki_par_ci,opt_par,opt_par_ci,enki_cost,enki_cost_ci,opt_cost,opt_cost_ci,enki_ms,enki_ms_ci,opt_ms,opt_ms_ci,opt_gap_max\n")
	for i, n := range r.Populations {
		fmt.Fprintf(&b, "%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n", n,
			r.EnkiPAR[i].Mean, r.EnkiPAR[i].Half,
			r.OptimalPAR[i].Mean, r.OptimalPAR[i].Half,
			r.EnkiCost[i].Mean, r.EnkiCost[i].Half,
			r.OptimalCost[i].Mean, r.OptimalCost[i].Half,
			r.EnkiTimeMS[i].Mean, r.EnkiTimeMS[i].Half,
			r.OptimalTime[i].Mean, r.OptimalTime[i].Half,
			r.OptimalGapMax[i])
	}
	return b.String()
}
