package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"enki/internal/coalition"
	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/market"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
	"enki/internal/stats"
)

// AblationRow is one variant's aggregate performance.
type AblationRow struct {
	Name   string
	Cost   stats.Interval // neighborhood cost κ(s), 95% CI
	PAR    stats.Interval // peak-to-average ratio
	TimeMS stats.Interval // allocation wall time
}

// AblationResult is a set of variants measured on identical days.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-24s %-20s %-18s %-14s\n", "variant", "cost ($ ±95%)", "PAR (±95%)", "time (ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %8.1f ±%-8.1f %7.3f ±%-8.3f %10.3f\n",
			row.Name, row.Cost.Mean, row.Cost.Half, row.PAR.Mean, row.PAR.Half, row.TimeMS.Mean)
	}
	return b.String()
}

// schedulerFactory builds a fresh scheduler for one simulated day.
// Rounds run concurrently under the experiment engine, and several
// schedulers carry per-allocation RNG state, so every round constructs
// its own instances from its own deterministic stream instead of
// sharing one scheduler across rounds.
type schedulerFactory func(rng *dist.RNG) sched.Scheduler

// RunOrderingAblation isolates the contribution of Enki's
// increasing-flexibility processing order: the same greedy placement
// rule under the Enki order, report order, a random order, the reversed
// (widest-first) order, plus the uncoordinated and best-response
// baselines, all on identical days.
func RunOrderingAblation(cfg Config, households, rounds int) (*AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pricer := cfg.Pricer()
	variants := []schedulerFactory{
		func(rng *dist.RNG) sched.Scheduler {
			return &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng}
		},
		func(*dist.RNG) sched.Scheduler {
			return &sched.GreedyOrdered{Pricer: pricer, Rating: cfg.Rating, Order: sched.OrderReport}
		},
		func(rng *dist.RNG) sched.Scheduler {
			return &sched.GreedyOrdered{Pricer: pricer, Rating: cfg.Rating, Order: sched.OrderShuffled, RNG: rng}
		},
		func(*dist.RNG) sched.Scheduler {
			return &sched.GreedyOrdered{Pricer: pricer, Rating: cfg.Rating, Order: sched.OrderWidestFirst}
		},
		func(*dist.RNG) sched.Scheduler {
			return &sched.LocalSearch{Base: sched.Earliest{}, Pricer: pricer, Rating: cfg.Rating}
		},
		func(*dist.RNG) sched.Scheduler { return sched.Earliest{} },
		func(rng *dist.RNG) sched.Scheduler { return &sched.Random{RNG: rng} },
	}
	return runVariants(cfg, "Ablation: greedy processing order (n="+fmt.Sprint(households)+")",
		variants, households, rounds)
}

// runVariants measures each scheduler variant on the same sequence of
// days. Each round is an independent job: it regenerates the day from
// the (cfg.Seed, round) stream, instantiates every variant from
// round-local streams, and writes its measurements into the round's
// pre-sized slot.
func runVariants(cfg Config, title string, variants []schedulerFactory, households, rounds int) (*AblationResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("experiment: rounds %d must be positive", rounds)
	}
	pricer := cfg.Pricer()
	names := make([]string, len(variants))
	for vi, v := range variants {
		names[vi] = v(dist.New(0)).Name()
	}

	type cell struct{ cost, par, ms float64 }
	cells := make([][]cell, rounds) // [round][variant]
	err := cfg.engine().ForEach(rounds, func(round int) error {
		rng := cfg.jobRNG(labelOrdering, uint64(round))
		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			return err
		}
		reports := profile.WideReports(gen.DrawN(households))
		row := make([]cell, len(variants))
		for vi, v := range variants {
			s := v(rng.Split())
			start := time.Now()
			assignments, err := s.Allocate(reports)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name(), err)
			}
			load := sched.LoadOfAssignments(assignments, cfg.Rating)
			row[vi] = cell{
				cost: pricing.Cost(pricer, load),
				par:  load.PAR(),
				ms:   float64(time.Since(start).Microseconds()) / 1000,
			}
		}
		cells[round] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &AblationResult{Title: title}
	for vi := range variants {
		costs := make([]float64, rounds)
		pars := make([]float64, rounds)
		times := make([]float64, rounds)
		for round := 0; round < rounds; round++ {
			costs[round] = cells[round][vi].cost
			pars[round] = cells[round][vi].par
			times[round] = cells[round][vi].ms
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:   names[vi],
			Cost:   stats.CI95(costs),
			PAR:    stats.CI95(pars),
			TimeMS: stats.CI95(times),
		})
	}
	return res, nil
}

// PricingAblationRow compares tariffs on identical days. Costs across
// tariffs are not directly comparable (different units), so the row
// reports the PAR the schedule achieves and the cost ratio versus the
// uncoordinated baseline under the same tariff.
type PricingAblationRow struct {
	Name      string
	PAR       stats.Interval
	Saving    stats.Interval // 1 − greedyCost/earliestCost under this tariff
	TimeMS    stats.Interval
	Composite string // description of the tariff
}

// PricingAblationResult compares the Eq. 1 quadratic tariff with the
// two-step convex tariff and a merit-order market pricer.
type PricingAblationResult struct {
	Rows []PricingAblationRow
}

// Render prints the tariff ablation.
func (r *PricingAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: pricing function (greedy savings vs uncoordinated)\n")
	fmt.Fprintf(&b, "%-14s %-18s %-20s %-30s\n", "tariff", "PAR (±95%)", "saving (±95%)", "form")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %7.3f ±%-8.3f %6.1f%% ±%-10.1f %-30s\n",
			row.Name, row.PAR.Mean, row.PAR.Half, 100*row.Saving.Mean, 100*row.Saving.Half, row.Composite)
	}
	return b.String()
}

// RunPricingAblation measures how the choice of convex tariff affects
// the greedy schedule's quality.
func RunPricingAblation(cfg Config, households, rounds int) (*PricingAblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	twoStep, err := pricing.NewPiecewise([]pricing.Step{{Threshold: 0, Rate: 0.5}, {Threshold: 8, Rate: 3}})
	if err != nil {
		return nil, err
	}
	stack, err := market.New([]market.Offer{
		{Generator: "hydro", Quantity: 20, Price: 0.05},
		{Generator: "coal", Quantity: 40, Price: 0.12},
		{Generator: "gas-peaker", Quantity: 60, Price: 0.40},
	})
	if err != nil {
		return nil, err
	}
	meritOrder, err := stack.Pricer()
	if err != nil {
		return nil, err
	}
	tariffs := []struct {
		name, desc string
		p          pricing.Pricer
	}{
		{"quadratic", "σl² (Eq. 1), σ=0.3", cfg.Pricer()},
		{"two-step", "0.5 then 3 $/kWh past 8", twoStep},
		{"merit-order", "hydro/coal/peaker stack", meritOrder},
	}

	type cell struct {
		par, saving, ms float64
		savingOK        bool
	}
	cells := make([][]cell, rounds) // [round][tariff]
	err = cfg.engine().ForEach(rounds, func(round int) error {
		rng := cfg.jobRNG(labelPricing, uint64(round))
		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			return err
		}
		reports := profile.WideReports(gen.DrawN(households))
		base, err := sched.Earliest{}.Allocate(reports)
		if err != nil {
			return err
		}
		baseLoad := sched.LoadOfAssignments(base, cfg.Rating)

		row := make([]cell, len(tariffs))
		for ti, tariff := range tariffs {
			g := &sched.Greedy{Pricer: tariff.p, Rating: cfg.Rating}
			start := time.Now()
			assignments, err := g.Allocate(reports)
			if err != nil {
				return err
			}
			load := sched.LoadOfAssignments(assignments, cfg.Rating)
			row[ti] = cell{
				par: load.PAR(),
				ms:  float64(time.Since(start).Microseconds()) / 1000,
			}
			gCost := pricing.Cost(tariff.p, load)
			eCost := pricing.Cost(tariff.p, baseLoad)
			if eCost > 0 {
				row[ti].saving = 1 - gCost/eCost
				row[ti].savingOK = true
			}
		}
		cells[round] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &PricingAblationResult{}
	for ti, tariff := range tariffs {
		var pars, savings, times []float64
		for round := 0; round < rounds; round++ {
			c := cells[round][ti]
			pars = append(pars, c.par)
			times = append(times, c.ms)
			if c.savingOK {
				savings = append(savings, c.saving)
			}
		}
		res.Rows = append(res.Rows, PricingAblationRow{
			Name:      tariff.name,
			PAR:       stats.CI95(pars),
			Saving:    stats.CI95(savings),
			TimeMS:    stats.CI95(times),
			Composite: tariff.desc,
		})
	}
	return res, nil
}

// CoalitionAblationResult measures the future-work coalition extension:
// on days where a fraction of households misreport, how many forced
// defections do coalition swaps absorb, and what happens to the
// misreporters' bills.
type CoalitionAblationResult struct {
	MisreportFraction float64
	Rescued           stats.Interval // rescued members per day
	Defectors         stats.Interval // genuine coalition-level defectors per day
	SoloDefectors     stats.Interval // defectors in the singleton world
	BillDelta         stats.Interval // mean payment change of misreporters (coalition − solo)
}

// Render prints the coalition ablation.
func (r *CoalitionAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: coalition swaps (%.0f%% misreporters)\n", 100*r.MisreportFraction)
	fmt.Fprintf(&b, "  rescued per day:        %.2f ±%.2f\n", r.Rescued.Mean, r.Rescued.Half)
	fmt.Fprintf(&b, "  coalition defectors:    %.2f ±%.2f\n", r.Defectors.Mean, r.Defectors.Half)
	fmt.Fprintf(&b, "  singleton defectors:    %.2f ±%.2f\n", r.SoloDefectors.Mean, r.SoloDefectors.Half)
	fmt.Fprintf(&b, "  misreporter bill delta: %+.2f ±%.2f $/day\n", r.BillDelta.Mean, r.BillDelta.Half)
	return b.String()
}

// RunCoalitionAblation runs the coalition-vs-singleton comparison.
func RunCoalitionAblation(cfg Config, households, rounds int, misreportFraction float64) (*CoalitionAblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if misreportFraction < 0 || misreportFraction > 1 {
		return nil, fmt.Errorf("experiment: misreport fraction %g outside [0, 1]", misreportFraction)
	}
	pricer := cfg.Pricer()

	type cell struct {
		rescued, defectors, solo, delta float64
		deltaOK                         bool
	}
	cells := make([]cell, rounds)
	err := cfg.engine().ForEach(rounds, func(round int) error {
		rng := cfg.jobRNG(labelCoalition, uint64(round))
		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			return err
		}
		profiles := gen.DrawN(households)
		hhs := make([]core.Household, households)
		misreporter := make([]bool, households)
		for i, p := range profiles {
			hhs[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
			if rng.Bool(misreportFraction) {
				misreporter[i] = true
				// Misreport: demand a rigid slot just past the true
				// window's last feasible start — outside the truth, but
				// still in the evening where a coalition partner's true
				// window may cover it (an exchange is then feasible).
				dur := p.Wide.Duration
				start := p.Wide.Window.End - dur + 1 + rng.Intn(2)
				if start+dur > core.HoursPerDay {
					start = core.HoursPerDay - dur
				}
				hhs[i].Reported = core.Preference{
					Window:   core.Interval{Begin: start, End: start + dur},
					Duration: dur,
				}
			}
		}
		reports := make([]core.Report, households)
		for i, h := range hhs {
			reports[i] = core.Report{ID: h.ID, Pref: h.Reported}
		}
		greedy := &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng.Split()}
		as, err := greedy.Allocate(reports)
		if err != nil {
			return err
		}
		assignments := make([]core.Interval, households)
		for i, a := range as {
			assignments[i] = a.Interval
		}

		coalitions, err := coalition.Form(hhs, coalition.DefaultMaxSize)
		if err != nil {
			return err
		}
		cCons, err := coalition.PlanConsumptions(hhs, coalitions, assignments)
		if err != nil {
			return err
		}
		withC, err := coalition.Settle(pricer, cfg.Mechanism, hhs, coalitions, assignments, cCons, cfg.Rating)
		if err != nil {
			return err
		}

		singletons := make([]coalition.Coalition, households)
		for i := range singletons {
			singletons[i] = coalition.Coalition{Members: []int{i}}
		}
		sCons, err := coalition.PlanConsumptions(hhs, singletons, assignments)
		if err != nil {
			return err
		}
		withoutC, err := coalition.Settle(pricer, cfg.Mechanism, hhs, singletons, assignments, sCons, cfg.Rating)
		if err != nil {
			return err
		}

		c := cell{
			rescued:   float64(withC.Rescued),
			defectors: float64(withC.Defectors),
			solo:      float64(withoutC.Defectors),
		}
		var d float64
		var nMis int
		for i := range hhs {
			if misreporter[i] {
				d += withC.Payments[i] - withoutC.Payments[i]
				nMis++
			}
		}
		if nMis > 0 {
			c.delta = d / float64(nMis)
			c.deltaOK = true
		}
		cells[round] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rescued, defectors, solo, delta []float64
	for _, c := range cells {
		rescued = append(rescued, c.rescued)
		defectors = append(defectors, c.defectors)
		solo = append(solo, c.solo)
		if c.deltaOK {
			delta = append(delta, c.delta)
		}
	}

	return &CoalitionAblationResult{
		MisreportFraction: misreportFraction,
		Rescued:           stats.CI95(rescued),
		Defectors:         stats.CI95(defectors),
		SoloDefectors:     stats.CI95(solo),
		BillDelta:         stats.CI95(delta),
	}, nil
}

// DiscountAblationResult compares Eq. 5's e^{o_i} overlap discount with
// a variant that omits it, on days with partial defections.
type DiscountAblationResult struct {
	WithDiscount    stats.Interval // mean defector payment with the e^{o} discount
	WithoutDiscount stats.Interval // mean defector payment without it
}

// Render prints the discount ablation.
func (r *DiscountAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: Eq. 5 overlap discount e^{o_i}\n")
	fmt.Fprintf(&b, "  partial defector pays %.2f ±%.2f with the discount\n",
		r.WithDiscount.Mean, r.WithDiscount.Half)
	fmt.Fprintf(&b, "  partial defector pays %.2f ±%.2f without it\n",
		r.WithoutDiscount.Mean, r.WithoutDiscount.Half)
	return b.String()
}

// RunDiscountAblation measures how much the overlap discount softens a
// partial defector's bill relative to a total defector's. Eq. 6
// normalizes defection scores by Σδ, so the discount only moves money
// between defectors: each day one household shifts its consumption by a
// single hour (high overlap o) while another defects with no overlap at
// all, and the partial defector's payment is compared with and without
// the e^{o_i} denominator (the "without" variant multiplies δ back by
// e^{o_i}).
func RunDiscountAblation(cfg Config, households, rounds int) (*DiscountAblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pricer := cfg.Pricer()

	type cell struct {
		with, without float64
		ok            bool
	}
	cells := make([]cell, rounds)
	err := cfg.engine().ForEach(rounds, func(round int) error {
		rng := cfg.jobRNG(labelDiscount, uint64(round))
		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			return err
		}
		profiles := gen.DrawN(households)
		hhs := make([]core.Household, households)
		reports := make([]core.Report, households)
		for i, p := range profiles {
			hhs[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
			reports[i] = core.Report{ID: hhs[i].ID, Pref: hhs[i].Reported}
		}
		greedy := &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng.Split()}
		as, err := greedy.Allocate(reports)
		if err != nil {
			return err
		}
		day := mechanism.Day{Households: hhs, Rating: cfg.Rating}
		for _, a := range as {
			day.Assignments = append(day.Assignments, a.Interval)
			day.Consumptions = append(day.Consumptions, a.Interval)
		}
		// The partial defector must have duration ≥ 2, so that a
		// one-hour shift keeps a positive overlap o and the e^{o}
		// discount can bite; a second household defects with no overlap
		// so the discount has a counterpart to move money toward.
		defector, full := -1, -1
		for i, h := range hhs {
			if defector < 0 && h.Reported.Duration >= 2 {
				defector = i
				continue
			}
			if full < 0 && i != defector {
				full = i
			}
		}
		if defector < 0 || full < 0 {
			return nil // degenerate day
		}
		shifted := day.Assignments[defector].Shift(1)
		if shifted.End > core.HoursPerDay {
			shifted = day.Assignments[defector].Shift(-1)
		}
		day.Consumptions[defector] = shifted
		// The total defector piles onto the peak hour (a harmful,
		// zero-overlap defection; moving off-peak would be clamped to
		// δ = 0 as a beneficial deviation).
		allocLoad := core.LoadOf(day.Assignments, cfg.Rating)
		peakHour, peak := 0, -1.0
		for h, l := range allocLoad {
			if l > peak {
				peakHour, peak = h, l
			}
		}
		v := day.Assignments[full].Len()
		start := peakHour
		if start > core.HoursPerDay-v {
			start = core.HoursPerDay - v
		}
		target := core.Interval{Begin: start, End: start + v}
		if target.Overlap(day.Assignments[full]) > 0 {
			// Ensure zero overlap with its own slot so o = 0.
			if start+v+v <= core.HoursPerDay {
				target = core.Interval{Begin: start + v, End: start + 2*v}
			} else {
				target = core.Interval{Begin: start - v, End: start}
			}
		}
		day.Consumptions[full] = target

		s, err := mechanism.Settle(pricer, cfg.Mechanism, day)
		if err != nil {
			return err
		}
		if s.Defection[defector] == 0 || s.Defection[full] == 0 {
			return nil // a harmless defection leaves nothing to compare
		}

		// Without the discount: scale δ back by e^{o} and recompute
		// Eq. 6/7 by hand.
		o := core.OverlapRatio(day.Assignments[defector], day.Consumptions[defector])
		defect := append([]float64(nil), s.Defection...)
		defect[defector] *= math.Exp(o)
		psi, err := mechanism.SocialCostScores(s.Flexibility, defect, cfg.Mechanism.K)
		if err != nil {
			return err
		}
		payments, err := mechanism.Payments(psi, cfg.Mechanism.Xi, s.Cost)
		if err != nil {
			return err
		}
		cells[round] = cell{with: s.Payments[defector], without: payments[defector], ok: true}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var with, without []float64
	for _, c := range cells {
		if c.ok {
			with = append(with, c.with)
			without = append(without, c.without)
		}
	}
	return &DiscountAblationResult{
		WithDiscount:    stats.CI95(with),
		WithoutDiscount: stats.CI95(without),
	}, nil
}
