package experiment

import (
	"strings"
	"testing"
)

func TestRunOrderingAblation(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunOrderingAblation(cfg, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("got %d variants, want 7", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	enki := byName["enki-greedy"]
	earliest := byName["earliest"]
	random := byName["random"]
	widest := byName["greedy-widest-first"]
	if enki.Cost.Mean >= earliest.Cost.Mean {
		t.Errorf("enki cost %g should beat uncoordinated %g", enki.Cost.Mean, earliest.Cost.Mean)
	}
	if enki.Cost.Mean >= random.Cost.Mean {
		t.Errorf("enki cost %g should beat random %g", enki.Cost.Mean, random.Cost.Mean)
	}
	// The flexibility ordering should not lose to the reversed order.
	if enki.Cost.Mean > widest.Cost.Mean*1.02 {
		t.Errorf("enki cost %g worse than widest-first %g", enki.Cost.Mean, widest.Cost.Mean)
	}
	if !strings.Contains(res.Render(), "enki-greedy") {
		t.Error("render missing variants")
	}
}

func TestRunPricingAblation(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunPricingAblation(cfg, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d tariffs, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PAR.Mean < 1 {
			t.Errorf("%s: PAR %g below 1", row.Name, row.PAR.Mean)
		}
		// Tolerance: on a flat tariff region greedy can tie the
		// uncoordinated cost exactly, differing only in float summation
		// order.
		if row.Saving.Mean < -1e-9 {
			t.Errorf("%s: greedy should never cost more than uncoordinated, saving %g",
				row.Name, row.Saving.Mean)
		}
	}
	if !strings.Contains(res.Render(), "quadratic") {
		t.Error("render missing tariffs")
	}
}

func TestRunCoalitionAblation(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunCoalitionAblation(cfg, 30, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Coalitions can only absorb defections, never create them.
	if res.Defectors.Mean > res.SoloDefectors.Mean+1e-9 {
		t.Errorf("coalition defectors %g exceed singleton defectors %g",
			res.Defectors.Mean, res.SoloDefectors.Mean)
	}
	if res.Rescued.Mean <= 0 {
		t.Error("with 25% misreporters some rescues should occur")
	}
	if !strings.Contains(res.Render(), "rescued") {
		t.Error("render missing fields")
	}
	if _, err := RunCoalitionAblation(cfg, 10, 2, 1.5); err == nil {
		t.Error("fraction > 1 should be rejected")
	}
}

func TestRunDiscountAblation(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunDiscountAblation(cfg, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The e^{o} discount must soften the partial defector's bill.
	if res.WithDiscount.Mean >= res.WithoutDiscount.Mean {
		t.Errorf("discounted payment %g should be below undiscounted %g",
			res.WithDiscount.Mean, res.WithoutDiscount.Mean)
	}
	if !strings.Contains(res.Render(), "discount") {
		t.Error("render missing text")
	}
}

func TestRunUtilityComparison(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunUtilityComparison(cfg, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 5: mean utility weakly higher with Enki.
	if res.MeanEnki.Mean < res.MeanBaseline.Mean-1e-9 {
		t.Errorf("Enki mean utility %g below baseline %g", res.MeanEnki.Mean, res.MeanBaseline.Mean)
	}
	// Theorem 6: the flexible quartile gains at least as much.
	if res.FlexibleEnki.Mean < res.FlexibleBaseline.Mean-1e-9 {
		t.Errorf("flexible Enki utility %g below baseline %g",
			res.FlexibleEnki.Mean, res.FlexibleBaseline.Mean)
	}
	if !strings.Contains(res.Render(), "Theorems 5 & 6") {
		t.Error("render missing title")
	}
}

func TestRunLearningCurve(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunLearningCurve(cfg, 8, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DefectionsPerDay) != 14 {
		t.Fatalf("got %d days, want 14", len(res.DefectionsPerDay))
	}
	// The ECC story: defections collapse as the learners converge.
	if res.LastWeek.Mean >= res.FirstWeek.Mean {
		t.Errorf("last week defections %g should be below first week %g",
			res.LastWeek.Mean, res.FirstWeek.Mean)
	}
	if res.DefectionsPerDay[0].Mean <= 0 {
		t.Error("cold-start day should force some defections")
	}
	if !strings.Contains(res.Render(), "ECC learning curve") {
		t.Error("render missing title")
	}
	if _, err := RunLearningCurve(cfg, 0, 1, 1); err == nil {
		t.Error("zero households should be rejected")
	}
}
