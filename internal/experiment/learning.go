package experiment

import (
	"fmt"
	"math"
	"strings"

	"enki/internal/core"
	"enki/internal/ecc"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/sched"
	"enki/internal/sim"
	"enki/internal/stats"
)

// LearningCurveResult measures the ECC story of Section I as an
// experiment: households whose smart meters learn their routine online,
// simulated over many days and seeds. Defections (forced when a
// prediction misses the real tolerance window) should collapse as the
// learners converge.
type LearningCurveResult struct {
	Days       int
	Households int
	// DefectionsPerDay is the mean defection count per day across
	// seeds, indexed by day (0-based).
	DefectionsPerDay []stats.Interval
	// FirstWeek and LastWeek aggregate defections per run.
	FirstWeek stats.Interval
	LastWeek  stats.Interval
}

// Render prints the learning curve.
func (r *LearningCurveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ECC learning curve (%d households, %d days)\n", r.Households, r.Days)
	fmt.Fprintf(&b, "%-6s %-18s\n", "day", "defections (±95%)")
	for i, iv := range r.DefectionsPerDay {
		if i < 5 || (i+1)%7 == 0 || i == len(r.DefectionsPerDay)-1 {
			fmt.Fprintf(&b, "%-6d %6.2f ±%-10.2f\n", i+1, iv.Mean, iv.Half)
		}
	}
	fmt.Fprintf(&b, "first week total: %.1f ±%.1f; last week total: %.1f ±%.1f\n",
		r.FirstWeek.Mean, r.FirstWeek.Half, r.LastWeek.Mean, r.LastWeek.Half)
	return b.String()
}

// learningHousehold is an in-process ECC-driven policy (the smartmeter
// example's policy, reusable under the sim driver): a hidden tolerance
// window, a learner fed by realized consumption, and an all-day
// cold-start fallback.
type learningHousehold struct {
	reporter  *ecc.Reporter
	tolerance core.Preference
}

func newLearningHousehold(mu float64, dur int, alpha float64) (*learningHousehold, error) {
	learner, err := ecc.NewLearner(ecc.WithAlpha(alpha))
	if err != nil {
		return nil, err
	}
	begin := int(math.Round(mu)) - 2
	if begin < 0 {
		begin = 0
	}
	end := begin + dur + 4
	if end > core.HoursPerDay {
		end = core.HoursPerDay
		begin = end - dur - 4
	}
	return &learningHousehold{
		reporter: &ecc.Reporter{
			Learner:  learner,
			Fallback: core.Preference{Window: core.Interval{Begin: 0, End: 24}, Duration: dur},
			MinDays:  2,
		},
		tolerance: core.Preference{
			Window:   core.Interval{Begin: begin, End: end},
			Duration: dur,
		},
	}, nil
}

func (h *learningHousehold) Report(int) core.Preference {
	forecast, err := h.reporter.Report()
	if err != nil {
		return core.Preference{Window: core.Interval{Begin: 0, End: 24}, Duration: h.tolerance.Duration}
	}
	return forecast.Preference
}

func (h *learningHousehold) Consume(_ int, allocation core.Interval) core.Interval {
	consumed := core.ClosestConsumption(h.tolerance, allocation)
	_ = h.reporter.Learner.Observe(consumed)
	return consumed
}

func (h *learningHousehold) Feedback(int, netproto.PaymentDetail) {}

// RunLearningCurve simulates ECC-driven households over `days` days and
// `seeds` independent populations, recording per-day defection counts.
func RunLearningCurve(cfg Config, households, days, seeds int) (*LearningCurveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if households <= 0 || days <= 0 || seeds <= 0 {
		return nil, fmt.Errorf("experiment: learning curve needs positive sizes")
	}
	pricer := cfg.Pricer()
	week := min(7, days)

	// Each seeded population is an independent job: its policies,
	// scheduler, and simulated days all draw from the (cfg.Seed, seed)
	// stream, and its per-day defection counts land in its own row.
	type runCell struct {
		perDay              []float64
		firstWeek, lastWeek float64
	}
	cells := make([]runCell, seeds)
	err := cfg.engine().ForEach(seeds, func(seed int) error {
		rng := cfg.jobRNG(labelLearning, uint64(seed))
		policies := make([]netproto.Policy, households)
		for i := range policies {
			mu := 14 + rng.Float64()*7 // evening-leaning routines
			dur := 1 + rng.Intn(3)
			p, err := newLearningHousehold(mu, dur, 0.3)
			if err != nil {
				return err
			}
			policies[i] = p
		}
		res, err := sim.Run(sim.Config{
			Scheduler: &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng.Split()},
			Pricer:    pricer,
			Mechanism: mechanism.Config(cfg.Mechanism),
			Rating:    cfg.Rating,
		}, policies, days)
		if err != nil {
			return err
		}
		c := runCell{perDay: make([]float64, days)}
		for d, metrics := range res.Days {
			c.perDay[d] = float64(metrics.Defections)
			if d < week {
				c.firstWeek += float64(metrics.Defections)
			}
			if d >= days-week {
				c.lastWeek += float64(metrics.Defections)
			}
		}
		cells[seed] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	firstWeek := make([]float64, seeds)
	lastWeek := make([]float64, seeds)
	for seed, c := range cells {
		firstWeek[seed] = c.firstWeek
		lastWeek[seed] = c.lastWeek
	}
	out := &LearningCurveResult{
		Days:       days,
		Households: households,
		FirstWeek:  stats.CI95(firstWeek),
		LastWeek:   stats.CI95(lastWeek),
	}
	for d := 0; d < days; d++ {
		day := make([]float64, seeds)
		for seed, c := range cells {
			day[seed] = c.perDay[d]
		}
		out.DefectionsPerDay = append(out.DefectionsPerDay, stats.CI95(day))
	}
	return out, nil
}
