package experiment

import (
	"fmt"
	"sort"
	"strings"

	"enki/internal/dist"
	"enki/internal/stats"
	"enki/internal/study"
)

// UserStudyResult bundles every Section VII deliverable: Table II
// (average defection rate per stage), Table III (Mann-Whitney tests of
// the defection counts), Table IV (defection rate by treatment),
// Figure 8 (true-interval selecting ratios with the Initial-vs-
// Cooperate test), and Figure 9 (flexibility-ratio trajectories).
type UserStudyResult struct {
	Study *study.StudyResult

	// TableII: mean defection rate per stage over all 20 subjects.
	TableII map[string]float64
	// TableIII: Mann-Whitney result per stage vs the random-defection
	// null.
	TableIII map[string]stats.MannWhitneyResult
	// TableIV: mean defection rate per stage, per treatment.
	TableIV map[string][2]float64 // [T1, T2]
	// Figure8: per non-confused subject, true-selecting ratio in
	// Initial and Cooperate, plus the test over the population.
	Figure8Subjects []Fig8Subject
	Figure8Test     stats.MannWhitneyResult
	Fig8Initial     float64 // mean over all 20 subjects, Initial
	Fig8Cooperate   float64 // mean over all 20 subjects, Cooperate
	// Figure9: flexibility-ratio series for P7, P8, and the average of
	// the intermediate-understanding subjects.
	Figure9P7           []float64
	Figure9P8           []float64
	Figure9Intermediate []float64
}

// Fig8Subject is one bar pair of Figure 8.
type Fig8Subject struct {
	Number    int
	Initial   float64
	Cooperate float64
}

// RunUserStudy executes the full study and computes every Section VII
// metric.
func RunUserStudy(cfg Config, scfg study.StudyConfig) (*UserStudyResult, error) {
	if scfg.Workers == 0 {
		scfg.Workers = cfg.Workers
	}
	res, err := study.RunStudy(scfg, dist.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	out := &UserStudyResult{
		Study:    res,
		TableII:  make(map[string]float64, 4),
		TableIII: make(map[string]stats.MannWhitneyResult, 4),
		TableIV:  make(map[string][2]float64, 4),
	}

	all := res.AllSubjects()
	t1 := res.SubjectsByTreatment(1)
	t2 := res.SubjectsByTreatment(2)
	for _, stage := range study.Stages() {
		out.TableII[stage.Name] = study.MeanDefectionRate(all, stage)
		mw, err := study.DefectionTest(all, stage)
		if err != nil {
			return nil, err
		}
		out.TableIII[stage.Name] = mw
		out.TableIV[stage.Name] = [2]float64{
			study.MeanDefectionRate(t1, stage),
			study.MeanDefectionRate(t2, stage),
		}
	}

	out.Fig8Initial = study.MeanTrueSelectingRatio(all, study.StageInitial)
	out.Fig8Cooperate = study.MeanTrueSelectingRatio(all, study.StageCooperate)
	nonConfused := res.NonConfused()
	mw, err := study.TrueSelectingTest(nonConfused)
	if err != nil {
		return nil, err
	}
	out.Figure8Test = mw
	for _, s := range res.Subjects {
		if s.Result.Model == "confused" {
			continue
		}
		out.Figure8Subjects = append(out.Figure8Subjects, Fig8Subject{
			Number:    s.Number,
			Initial:   study.TrueSelectingRatio(s.Result, study.StageInitial),
			Cooperate: study.TrueSelectingRatio(s.Result, study.StageCooperate),
		})
	}
	sort.Slice(out.Figure8Subjects, func(i, j int) bool {
		return out.Figure8Subjects[i].Number < out.Figure8Subjects[j].Number
	})

	var interCount int
	for _, s := range res.Subjects {
		series := study.FlexibilitySeries(s.Result)
		switch {
		case s.Number == 7:
			out.Figure9P7 = series
		case s.Number == 8:
			out.Figure9P8 = series
		case s.Result.Model == "intermediate":
			if out.Figure9Intermediate == nil {
				out.Figure9Intermediate = make([]float64, len(series))
			}
			for i, v := range series {
				out.Figure9Intermediate[i] += v
			}
			interCount++
		}
	}
	for i := range out.Figure9Intermediate {
		out.Figure9Intermediate[i] /= float64(interCount)
	}
	return out, nil
}

// RenderTableII prints Table II.
func (r *UserStudyResult) RenderTableII() string {
	var b strings.Builder
	b.WriteString("Table II: Average defection rate of 20 subjects\n")
	b.WriteString(stageHeader())
	for _, stage := range study.Stages() {
		fmt.Fprintf(&b, " %-10.4f", r.TableII[stage.Name])
	}
	b.WriteString("\n")
	return b.String()
}

// RenderTableIII prints Table III.
func (r *UserStudyResult) RenderTableIII() string {
	var b strings.Builder
	b.WriteString("Table III: Mann-Whitney U test of defection vs random play\n")
	b.WriteString(stageHeader())
	for _, stage := range study.Stages() {
		fmt.Fprintf(&b, " %-10s", stats.FormatP(r.TableIII[stage.Name].P))
	}
	b.WriteString("\n")
	return b.String()
}

// RenderTableIV prints Table IV.
func (r *UserStudyResult) RenderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: Average defection rate in two treatments\n")
	b.WriteString("     " + stageHeader())
	for t := 0; t < 2; t++ {
		fmt.Fprintf(&b, "T%d   ", t+1)
		for _, stage := range study.Stages() {
			fmt.Fprintf(&b, " %-10.2f", r.TableIV[stage.Name][t])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure8 prints the per-subject true-selecting ratios and test.
func (r *UserStudyResult) RenderFigure8() string {
	var b strings.Builder
	b.WriteString("Figure 8: True-interval selecting ratio (non-confused subjects)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s\n", "subject", "Initial", "Cooperate")
	for _, s := range r.Figure8Subjects {
		fmt.Fprintf(&b, "%-8d %-10.2f %-10.2f\n", s.Number, s.Initial, s.Cooperate)
	}
	fmt.Fprintf(&b, "all-subject means: Initial %.4f, Cooperate %.4f\n", r.Fig8Initial, r.Fig8Cooperate)
	fmt.Fprintf(&b, "Mann-Whitney p = %s (paper: 0.0143)\n", stats.FormatP(r.Figure8Test.P))
	return b.String()
}

// RenderFigure9 prints the flexibility trajectories.
func (r *UserStudyResult) RenderFigure9() string {
	var b strings.Builder
	b.WriteString("Figure 9: Flexibility ratio by round\n")
	fmt.Fprintf(&b, "%-6s %-8s %-8s %-14s\n", "round", "P7", "P8", "intermediate")
	for i := range r.Figure9P7 {
		fmt.Fprintf(&b, "%-6d %-8.2f %-8.2f %-14.2f\n",
			i+1, r.Figure9P7[i], r.Figure9P8[i], r.Figure9Intermediate[i])
	}
	return b.String()
}

func stageHeader() string {
	var b strings.Builder
	for _, stage := range study.Stages() {
		fmt.Fprintf(&b, " %-10s", stage.Name)
	}
	return b.String() + "\n"
}
