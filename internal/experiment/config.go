// Package experiment regenerates every table and figure of the paper's
// evaluation (Section VI simulation study and Section VII user study).
// Each generator returns a structured result with a Render method that
// prints the same rows/series the paper reports, plus CSV export for
// plotting.
package experiment

import (
	"fmt"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/parallel"
	"enki/internal/pricing"
	"enki/internal/solver"
)

// Config carries the simulation-study parameters (Section VI).
type Config struct {
	// Seed makes every experiment reproducible.
	Seed uint64
	// Workers sets the experiment engine's pool size: simulated days are
	// independent jobs fanned out over this many goroutines. Zero means
	// runtime.GOMAXPROCS(0); 1 runs the serial reference path. Results
	// are bit-for-bit identical for every worker count, because each
	// job's randomness is derived from (Seed, job labels) rather than
	// from execution order.
	Workers int
	// Sigma is the pricing scale σ (paper: 0.3).
	Sigma float64
	// Rating is the power rating r in kW (paper: 2).
	Rating float64
	// Mechanism carries k and ξ (paper: 1 and 1.2).
	Mechanism mechanism.Config
	// Populations are the neighborhood sizes swept in Figures 4-6
	// (paper: 10..50).
	Populations []int
	// Rounds is the number of simulated days per population (paper: 10).
	Rounds int
	// OptimalOptions bounds each Optimal solve. The default applies a
	// per-solve time budget so a full sweep finishes on a laptop; the
	// incumbent it returns is the converged branch-and-bound solution
	// (see DESIGN.md on the CPLEX substitution).
	OptimalOptions solver.Options
}

// DefaultConfig returns the paper's Section VI parameters.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Sigma:       pricing.DefaultSigma,
		Rating:      core.DefaultPowerRating,
		Mechanism:   mechanism.DefaultConfig(),
		Populations: []int{10, 20, 30, 40, 50},
		Rounds:      10,
		OptimalOptions: solver.Options{
			TimeLimit: 2 * time.Second,
			RelGap:    1e-4,
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("experiment: workers %d must be non-negative", c.Workers)
	}
	if c.Sigma <= 0 {
		return fmt.Errorf("experiment: sigma %g must be positive", c.Sigma)
	}
	if c.Rating <= 0 {
		return fmt.Errorf("experiment: rating %g must be positive", c.Rating)
	}
	if len(c.Populations) == 0 {
		return fmt.Errorf("experiment: no populations")
	}
	for _, n := range c.Populations {
		if n <= 0 {
			return fmt.Errorf("experiment: population %d must be positive", n)
		}
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("experiment: rounds %d must be positive", c.Rounds)
	}
	return c.Mechanism.Validate()
}

// Pricer returns the Eq. 1 pricer for the configured σ.
func (c Config) Pricer() pricing.Quadratic { return pricing.Quadratic{Sigma: c.Sigma} }

// engine returns the worker pool every experiment fans its jobs out on.
func (c Config) engine() parallel.Engine { return parallel.Engine{Workers: c.Workers} }

// Experiment labels namespace the per-job RNG streams: every experiment
// derives each job's generator as
//
//	dist.New(cfg.Seed).Split(label, jobLabels...)
//
// which is a pure function of (Seed, label, jobLabels), so results do
// not depend on how jobs interleave across workers. Values are part of
// the reproducibility contract — appending is fine, reordering is not.
const (
	labelSweep uint64 = iota + 1
	labelOrdering
	labelPricing
	labelCoalition
	labelDiscount
	labelFig7
	labelFig7Others
	labelLearning
	labelUtility
)

// jobRNG opens the deterministic stream for one experiment job.
func (c Config) jobRNG(labels ...uint64) *dist.RNG {
	return dist.New(c.Seed).Split(labels...)
}
