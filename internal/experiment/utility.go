package experiment

import (
	"fmt"
	"strings"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/profile"
	"enki/internal/sched"
	"enki/internal/stats"
)

// UtilityComparisonResult is the Theorem 5/6 empirical check: expected
// household utility with Enki versus the proportional-allocation
// (no-DSM, price-taking) world, overall and for the most flexible
// quartile of households.
type UtilityComparisonResult struct {
	Households int
	// MeanEnki and MeanBaseline are the E(U_i) of Theorem 5.
	MeanEnki     stats.Interval
	MeanBaseline stats.Interval
	// FlexibleEnki and FlexibleBaseline restrict to the top-quartile
	// flexibility households (Theorem 6).
	FlexibleEnki     stats.Interval
	FlexibleBaseline stats.Interval
}

// Render prints the comparison.
func (r *UtilityComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorems 5 & 6: expected utility with vs without Enki (n=%d)\n", r.Households)
	fmt.Fprintf(&b, "%-28s %-20s %-20s\n", "population", "Enki E(U) (±95%)", "no-DSM E(U) (±95%)")
	fmt.Fprintf(&b, "%-28s %8.2f ±%-9.2f %8.2f ±%-9.2f\n", "all households",
		r.MeanEnki.Mean, r.MeanEnki.Half, r.MeanBaseline.Mean, r.MeanBaseline.Half)
	fmt.Fprintf(&b, "%-28s %8.2f ±%-9.2f %8.2f ±%-9.2f\n", "most flexible quartile",
		r.FlexibleEnki.Mean, r.FlexibleEnki.Half, r.FlexibleBaseline.Mean, r.FlexibleBaseline.Half)
	return b.String()
}

// RunUtilityComparison measures Theorems 5 and 6 empirically: every
// household reports its wide interval truthfully; the Enki world
// allocates greedily and settles with Eq. 7, the baseline world has
// everyone consume at its window start and pay proportionally to
// energy. Valuations are identical in both worlds (each household's
// preference is respected), so the difference is purely the payment
// side.
//
// Durations are fixed at 2 hours, matching Theorem 6's load-bearing
// assumption that "all the households consume the same amount of
// power": Eq. 6 apportions by normalized scores, not energy, so with
// heterogeneous durations a short-duration (hence high-flexibility)
// household can pay more under Enki than under energy-proportional
// billing — a real property of the mechanism this harness makes
// visible if the assumption is dropped.
func RunUtilityComparison(cfg Config, households, rounds int) (*UtilityComparisonResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("experiment: utility comparison rounds %d must be positive", rounds)
	}
	pricer := cfg.Pricer()

	profCfg := profile.DefaultConfig()
	profCfg.MinDuration = 2
	profCfg.MaxDuration = 2

	// One job per simulated day; each draws both worlds from the
	// (Seed, round) stream and fills its own cell.
	type utilityCell struct {
		enki, base         float64
		flexEnki, flexBase float64
		flexOK             bool
	}
	cells := make([]utilityCell, rounds)
	err := cfg.engine().ForEach(rounds, func(round int) error {
		rng := cfg.jobRNG(labelUtility, uint64(round))
		gen, err := profile.NewGenerator(profCfg, rng.Split())
		if err != nil {
			return err
		}
		profiles := gen.DrawN(households)
		hhs := make([]core.Household, households)
		reports := make([]core.Report, households)
		prefs := make([]core.Preference, households)
		for i, p := range profiles {
			hhs[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
			reports[i] = core.Report{ID: hhs[i].ID, Pref: p.Wide}
			prefs[i] = p.Wide
		}

		greedy := &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng.Split()}
		ga, err := greedy.Allocate(reports)
		if err != nil {
			return err
		}
		enkiDay := mechanism.Day{Households: hhs, Rating: cfg.Rating}
		for _, a := range ga {
			enkiDay.Assignments = append(enkiDay.Assignments, a.Interval)
			enkiDay.Consumptions = append(enkiDay.Consumptions, a.Interval)
		}
		enki, err := mechanism.Settle(pricer, cfg.Mechanism, enkiDay)
		if err != nil {
			return err
		}

		baseDay := mechanism.Day{Households: hhs, Rating: cfg.Rating}
		for _, h := range hhs {
			iv := h.Reported.IntervalAt(0)
			baseDay.Assignments = append(baseDay.Assignments, iv)
			baseDay.Consumptions = append(baseDay.Consumptions, iv)
		}
		baseline, err := mechanism.SettleProportional(pricer, cfg.Mechanism.Xi, baseDay)
		if err != nil {
			return err
		}

		// Top-quartile flexibility (predicted, Eq. 4).
		flex := mechanism.FlexibilityScores(prefs)
		threshold := quantile(flex, 0.75)

		var eSum, bSum float64
		var eFlexSum, bFlexSum, flexCount float64
		for i := range hhs {
			eSum += enki.Utilities[i]
			bSum += baseline.Utilities[i]
			if flex[i] >= threshold {
				eFlexSum += enki.Utilities[i]
				bFlexSum += baseline.Utilities[i]
				flexCount++
			}
		}
		c := utilityCell{
			enki: eSum / float64(households),
			base: bSum / float64(households),
		}
		if flexCount > 0 {
			c.flexEnki = eFlexSum / flexCount
			c.flexBase = bFlexSum / flexCount
			c.flexOK = true
		}
		cells[round] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	var enkiAll, baseAll, enkiFlex, baseFlex []float64
	for _, c := range cells {
		enkiAll = append(enkiAll, c.enki)
		baseAll = append(baseAll, c.base)
		if c.flexOK {
			enkiFlex = append(enkiFlex, c.flexEnki)
			baseFlex = append(baseFlex, c.flexBase)
		}
	}

	return &UtilityComparisonResult{
		Households:       households,
		MeanEnki:         stats.CI95(enkiAll),
		MeanBaseline:     stats.CI95(baseAll),
		FlexibleEnki:     stats.CI95(enkiFlex),
		FlexibleBaseline: stats.CI95(baseFlex),
	}, nil
}

// quantile returns the q-th quantile of xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
