package experiment

import (
	"reflect"
	"testing"

	"enki/internal/obs"
)

// runSweepObserved resets the default registry and tracer, runs a
// sweep at the given worker count, and returns what observability
// recorded: the metric snapshot and the sorted span identities.
func runSweepObserved(t *testing.T, workers int) (obs.Snapshot, []string) {
	t.Helper()
	obs.Default().Reset()
	tracer := obs.DefaultTracer()
	tracer.Drain()
	tracer.Enable()
	defer tracer.Disable()
	if _, err := RunSweep(detConfig(workers)); err != nil {
		t.Fatal(err)
	}
	return obs.Default().Snapshot(), tracer.Identities()
}

// TestObsSweepWorkersDeterministic is the observability half of the
// engine's determinism guarantee: the metric snapshot — counters and
// non-timing histograms — and the span-trace identities are identical
// whether the sweep runs serially or on eight workers. Timing
// histograms (the _ms series) and gauges are exempt by contract; the
// detConfig solver options carry no time limit, so node and prune
// counts are pure functions of the inputs.
func TestObsSweepWorkersDeterministic(t *testing.T) {
	serialSnap, serialSpans := runSweepObserved(t, 1)
	pooledSnap, pooledSpans := runSweepObserved(t, 8)

	if diffs := serialSnap.DiffDeterministic(pooledSnap); len(diffs) != 0 {
		t.Errorf("Workers:8 metric snapshot differs from Workers:1:\n%v", diffs)
	}
	if !reflect.DeepEqual(serialSpans, pooledSpans) {
		t.Errorf("Workers:8 span identities differ from Workers:1:\nserial: %v\npooled: %v",
			serialSpans, pooledSpans)
	}
	if len(serialSpans) == 0 {
		t.Error("sweep produced no day spans")
	}

	// The deterministic series must actually be populated — an empty
	// snapshot would also pass the diff.
	for _, name := range []string{
		obs.MetricSolverSolvesTotal,
		obs.MetricSolverNodesExpanded,
	} {
		if serialSnap.Counters[name] == 0 {
			t.Errorf("counter %s not incremented by the sweep", name)
		}
	}
	if serialSnap.Counters[`enki_sched_allocate_total{scheduler="enki-greedy"}`] == 0 {
		t.Errorf("greedy allocation counter missing from snapshot: %v", serialSnap.Counters)
	}
}

// TestObsMechanismWorkersDeterministic covers the mechanism series the
// sweep never touches: RunUtilityComparison settles every simulated
// day, so the settlement counter and the flexibility/defection/payment
// histograms must also replay identically across worker counts.
func TestObsMechanismWorkersDeterministic(t *testing.T) {
	collect := func(workers int) obs.Snapshot {
		obs.Default().Reset()
		if _, err := RunUtilityComparison(detConfig(workers), 10, 4); err != nil {
			t.Fatal(err)
		}
		return obs.Default().Snapshot()
	}
	serial := collect(1)
	pooled := collect(8)
	if diffs := serial.DiffDeterministic(pooled); len(diffs) != 0 {
		t.Errorf("Workers:8 mechanism snapshot differs from Workers:1:\n%v", diffs)
	}
	if serial.Counters[obs.MetricMechSettlementsTotal] == 0 {
		t.Errorf("settlement counter not incremented: %v", serial.Counters)
	}
	hist, ok := serial.Histograms[obs.MetricMechFlexibilityScore]
	if !ok || hist.Count == 0 {
		t.Errorf("flexibility histogram empty: %+v", serial.Histograms)
	}
}
