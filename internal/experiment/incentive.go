package experiment

import (
	"fmt"
	"sort"
	"strings"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

// Fig7Config sets up the Section VI-B incentive-compatibility study:
// a neighborhood of n households where household 1's best response is
// explored over every preference it could report.
type Fig7Config struct {
	// Households is the neighborhood size (paper: 50).
	Households int
	// Truth is household 1's true preference (paper: narrow (18, 20)).
	Truth core.Preference
	// Limits is the widest window household 1 would consider reporting
	// (paper: its wide interval (16, 24)).
	Limits core.Interval
	// Rho is household 1's valuation factor (paper: 5).
	Rho float64
	// Repeats averages utilities over this many runs (paper: 10).
	Repeats int
}

// DefaultFig7Config returns the paper's setting.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Households: 50,
		Truth:      core.MustPreference(18, 20, 2),
		Limits:     core.Interval{Begin: 16, End: 24},
		Rho:        5,
		Repeats:    10,
	}
}

// ReportUtility is household 1's average utility when reporting a
// particular window.
type ReportUtility struct {
	Window  core.Interval
	Utility float64
}

// Fig7Result is the Figure 7 best-response surface.
type Fig7Result struct {
	Truth   core.Preference
	Reports []ReportUtility // every candidate report, best first
}

// Best returns the report with the highest average utility.
func (r *Fig7Result) Best() ReportUtility { return r.Reports[0] }

// UtilityOf looks up a report's mean utility; ok is false if the
// window was not a candidate.
func (r *Fig7Result) UtilityOf(w core.Interval) (float64, bool) {
	for _, ru := range r.Reports {
		if ru.Window == w {
			return ru.Utility, true
		}
	}
	return 0, false
}

// RunFigure7 explores household 1's best response when every other
// household reports truthfully (its narrow interval, fixed across the
// exploration). For each candidate window the run is repeated with
// fresh greedy tie-breaking, household 1 consumes within its true
// interval as close to its allocation as possible, and its Eq. 8
// utility is averaged. Weak Bayesian incentive-compatibility predicts
// the true interval maximizes this utility.
func RunFigure7(cfg Config, fcfg Fig7Config) (*Fig7Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fcfg.Truth.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: fig7 truth: %w", err)
	}
	if fcfg.Households < 2 {
		return nil, fmt.Errorf("experiment: fig7 needs at least 2 households")
	}
	if fcfg.Repeats <= 0 {
		return nil, fmt.Errorf("experiment: fig7 repeats %d must be positive", fcfg.Repeats)
	}
	pricer := cfg.Pricer()

	// The other households' profiles are generated once and kept
	// unchanged; their true preference is their narrow interval.
	gen, err := profile.NewGenerator(profile.DefaultConfig(), cfg.jobRNG(labelFig7Others))
	if err != nil {
		return nil, err
	}
	others := gen.DrawN(fcfg.Households - 1)

	var candidates []core.Interval
	for b := fcfg.Limits.Begin; b <= fcfg.Limits.End-fcfg.Truth.Duration; b++ {
		for e := b + fcfg.Truth.Duration; e <= fcfg.Limits.End; e++ {
			candidates = append(candidates, core.Interval{Begin: b, End: e})
		}
	}

	// One job per candidate window; each repeat draws its greedy
	// tie-breaking from the (Seed, candidate, repeat) stream so the
	// surface is identical for every worker count.
	utilities := make([]float64, len(candidates))
	err = cfg.engine().ForEach(len(candidates), func(ci int) error {
		report := core.Preference{Window: candidates[ci], Duration: fcfg.Truth.Duration}
		var total float64
		for rep := 0; rep < fcfg.Repeats; rep++ {
			rng := cfg.jobRNG(labelFig7, uint64(ci), uint64(rep))
			u, err := fig7Utility(cfg, fcfg, pricer, others, report, rng)
			if err != nil {
				return err
			}
			total += u
		}
		utilities[ci] = total / float64(fcfg.Repeats)
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &Fig7Result{Truth: fcfg.Truth}
	for ci, w := range candidates {
		result.Reports = append(result.Reports, ReportUtility{Window: w, Utility: utilities[ci]})
	}
	sort.SliceStable(result.Reports, func(i, j int) bool {
		return result.Reports[i].Utility > result.Reports[j].Utility
	})
	return result, nil
}

func fig7Utility(cfg Config, fcfg Fig7Config, pricer pricing.Pricer, others []profile.Profile, report core.Preference, rng *dist.RNG) (float64, error) {
	reports := make([]core.Report, 0, len(others)+1)
	reports = append(reports, core.Report{ID: 0, Pref: report})
	for i, o := range others {
		reports = append(reports, core.Report{ID: core.HouseholdID(i + 1), Pref: o.Narrow})
	}

	greedy := &sched.Greedy{Pricer: pricer, Rating: cfg.Rating, RNG: rng}
	assignments, err := greedy.Allocate(reports)
	if err != nil {
		return 0, err
	}

	prefs := make([]core.Preference, len(reports))
	assigned := make([]core.Interval, len(reports))
	consumed := make([]core.Interval, len(reports))
	for i := range reports {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		consumed[i] = assigned[i]
	}
	// Household 1 consumes within its true interval, close to its
	// allocation; everyone else complies.
	consumed[0] = core.ClosestConsumption(fcfg.Truth, assigned[0])

	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	defect := mechanism.DefectionScores(pricer, cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, cfg.Mechanism.K)
	if err != nil {
		return 0, err
	}
	cost := pricing.CostOfIntervals(pricer, consumed, cfg.Rating)
	payments, err := mechanism.Payments(psi, cfg.Mechanism.Xi, cost)
	if err != nil {
		return 0, err
	}

	valuation := core.Valuation(core.Satisfaction(assigned[0], fcfg.Truth), fcfg.Truth.Duration, fcfg.Rho)
	return core.Utility(valuation, payments[0]), nil
}

// Render prints the best-response table (Figure 7): the top reports and
// where the truth ranks.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Utility of household 1 by reported window (truth %v)\n", r.Truth)
	fmt.Fprintf(&b, "%-12s %-12s\n", "report", "utility")
	elided := false
	for i, ru := range r.Reports {
		isTruth := ru.Window == r.Truth.Window
		if i >= 10 && !isTruth && i != len(r.Reports)-1 {
			elided = true
			continue
		}
		if elided {
			b.WriteString("...\n")
			elided = false
		}
		marker := ""
		if isTruth {
			marker = "  <- true interval"
		}
		fmt.Fprintf(&b, "%-12v %-12.3f%s\n", ru.Window, ru.Utility, marker)
	}
	return b.String()
}

// CSV renders the surface for plotting.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("begin,end,utility\n")
	for _, ru := range r.Reports {
		fmt.Fprintf(&b, "%d,%d,%g\n", ru.Window.Begin, ru.Window.End, ru.Utility)
	}
	return b.String()
}
