package market

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

func testOffers() []Offer {
	return []Offer{
		{Generator: "hydro", Quantity: 20, Price: 0.05},
		{Generator: "coal", Quantity: 30, Price: 0.12},
		{Generator: "gas-peaker", Quantity: 25, Price: 0.40},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("no offers should be rejected")
	}
	if _, err := New([]Offer{{Generator: "", Quantity: 1, Price: 1}}); err == nil {
		t.Error("unnamed generator should be rejected")
	}
	if _, err := New([]Offer{{Generator: "g", Quantity: 0, Price: 1}}); err == nil {
		t.Error("zero quantity should be rejected")
	}
	if _, err := New([]Offer{{Generator: "g", Quantity: 1, Price: -1}}); err == nil {
		t.Error("negative price should be rejected")
	}
}

func TestClearMeritOrder(t *testing.T) {
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 75 {
		t.Errorf("capacity = %g, want 75", m.Capacity())
	}

	// 10 kWh: hydro alone.
	c, err := m.Clear(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Dispatched) != 1 || c.Dispatched[0].Generator != "hydro" {
		t.Fatalf("dispatch = %+v, want hydro only", c.Dispatched)
	}
	if !almost(c.Cost, 0.5) || !almost(c.MarginalPrice, 0.05) {
		t.Errorf("cost %g marginal %g, want 0.5 and 0.05", c.Cost, c.MarginalPrice)
	}

	// 40 kWh: hydro full + 20 coal.
	c, err = m.Clear(40)
	if err != nil {
		t.Fatal(err)
	}
	wantCost := 20*0.05 + 20*0.12
	if !almost(c.Cost, wantCost) {
		t.Errorf("cost = %g, want %g", c.Cost, wantCost)
	}
	if c.MarginalPrice != 0.12 {
		t.Errorf("marginal price = %g, want 0.12", c.MarginalPrice)
	}

	// Beyond capacity: shortfall reported.
	c, err = m.Clear(100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c.Shortfall, 25) {
		t.Errorf("shortfall = %g, want 25", c.Shortfall)
	}
}

func TestClearNegativeDemand(t *testing.T) {
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Clear(-1); err == nil {
		t.Error("negative demand should be rejected")
	}
}

func TestOffPeakPricesLower(t *testing.T) {
	// The Section I property: off-peak (low-demand) hours clear at a
	// lower marginal price than peak hours.
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	offPeak, err := m.Clear(15)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := m.Clear(60)
	if err != nil {
		t.Fatal(err)
	}
	if offPeak.MarginalPrice >= peak.MarginalPrice {
		t.Errorf("off-peak marginal %g should be below peak marginal %g",
			offPeak.MarginalPrice, peak.MarginalPrice)
	}
}

func TestClearDay(t *testing.T) {
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	var load core.Load
	load.AddInterval(core.Interval{Begin: 18, End: 22}, 30)
	clearings, total, err := m.ClearDay(load)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range clearings {
		sum += c.Cost
	}
	if !almost(total, sum) {
		t.Errorf("total %g != sum of hourly costs %g", total, sum)
	}
	// An overloaded day errors.
	load.AddInterval(core.Interval{Begin: 18, End: 19}, 100)
	if _, _, err := m.ClearDay(load); err == nil {
		t.Error("demand beyond capacity should fail the day")
	}
}

func TestPricerMatchesClearing(t *testing.T) {
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Pricer()
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{0, 5, 20, 35, 50, 75} {
		c, err := m.Clear(demand)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.HourCost(demand); !almost(got, c.Cost) {
			t.Errorf("Pricer.HourCost(%g) = %g, clearing cost %g", demand, got, c.Cost)
		}
	}
	// Beyond capacity the pricer applies the scarcity rate instead of
	// failing, and stays monotone.
	inCap := p.HourCost(75)
	beyond := p.HourCost(80)
	if beyond <= inCap {
		t.Errorf("scarcity pricing must increase the cost: %g -> %g", inCap, beyond)
	}
	wantScarcity := inCap + 5*0.40*ScarcityMultiplier
	if !almost(beyond, wantScarcity) {
		t.Errorf("scarcity cost = %g, want %g", beyond, wantScarcity)
	}
}

func TestPricerMergesEqualPrices(t *testing.T) {
	m, err := New([]Offer{
		{Generator: "a", Quantity: 10, Price: 0.1},
		{Generator: "b", Quantity: 10, Price: 0.1},
		{Generator: "c", Quantity: 10, Price: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Pricer()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.HourCost(20); !almost(got, 2.0) {
		t.Errorf("HourCost(20) = %g, want 2.0", got)
	}
}

// TestEnkiOnMarketPrices runs the whole pipeline against merit-order
// prices: greedy scheduling against the market pricer lowers the
// procurement cost versus uncoordinated consumption.
func TestEnkiOnMarketPrices(t *testing.T) {
	m, err := New(testOffers())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Pricer()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(5))
	if err != nil {
		t.Fatal(err)
	}
	reports := profile.WideReports(gen.DrawN(25))

	greedy := &sched.Greedy{Pricer: p, Rating: 2}
	ga, err := greedy.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := sched.Earliest{}.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	gCost := pricing.Cost(p, sched.LoadOfAssignments(ga, 2))
	eCost := pricing.Cost(p, sched.LoadOfAssignments(ea, 2))
	if gCost > eCost {
		t.Errorf("greedy on market prices costs %g, uncoordinated %g", gCost, eCost)
	}
	// The realized greedy day must clear without shortfall.
	if _, _, err := m.ClearDay(sched.LoadOfAssignments(ga, 2)); err != nil {
		t.Errorf("greedy day does not clear: %v", err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
