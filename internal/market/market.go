// Package market implements the day-ahead wholesale power market the
// paper situates Enki in (Section I): "a wholesale power market
// functions as a single-sided auction where resource providers bid for
// a given amount of power for the next day and wholesale prices are
// lower during off-peak periods."
//
// Generators submit supply offers (quantity at a marginal price); the
// market dispatches them in merit order. The resulting supply curve is
// convex piecewise-linear, so it plugs straight into the rest of the
// system as a pricing.Pricer: a neighborhood can run Enki against real
// merit-order prices instead of the stylized quadratic tariff, and the
// "prices are lower off-peak" property emerges because low demand stops
// at the cheap end of the merit order.
package market

import (
	"fmt"
	"sort"

	"enki/internal/core"
	"enki/internal/pricing"
)

// Offer is one generator's supply offer for every hour of the next day:
// up to Quantity kWh per hour at Price dollars per kWh.
type Offer struct {
	Generator string  // who offers
	Quantity  float64 // kWh per hour
	Price     float64 // $/kWh
}

// Validate checks the offer.
func (o Offer) Validate() error {
	if o.Generator == "" {
		return fmt.Errorf("market: offer without generator name")
	}
	if o.Quantity <= 0 {
		return fmt.Errorf("market: offer %q: quantity %g must be positive", o.Generator, o.Quantity)
	}
	if o.Price < 0 {
		return fmt.Errorf("market: offer %q: negative price %g", o.Generator, o.Price)
	}
	return nil
}

// Dispatch is one generator's cleared output for an hour.
type Dispatch struct {
	Generator string
	Quantity  float64
	Price     float64 // the generator's own offer price (pay-as-bid)
}

// Clearing is the outcome of clearing one hour's demand.
type Clearing struct {
	Demand        float64    // kWh requested
	MarginalPrice float64    // price of the last dispatched unit
	Cost          float64    // pay-as-bid procurement cost
	Dispatched    []Dispatch // merit-order dispatch
	Shortfall     float64    // unmet demand when capacity is exhausted
}

// Market is a day-ahead single-sided auction over a fixed offer stack.
// Construct with New; the offer stack is sorted into merit order once.
type Market struct {
	offers   []Offer // merit order (ascending price)
	capacity float64
}

// New builds a market from generator offers.
func New(offers []Offer) (*Market, error) {
	if len(offers) == 0 {
		return nil, fmt.Errorf("market: no offers")
	}
	sorted := make([]Offer, len(offers))
	copy(sorted, offers)
	var capacity float64
	for _, o := range sorted {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		capacity += o.Quantity
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Price < sorted[j].Price })
	return &Market{offers: sorted, capacity: capacity}, nil
}

// Capacity is the stack's total hourly capacity in kWh.
func (m *Market) Capacity() float64 { return m.capacity }

// Clear dispatches one hour of demand in merit order.
func (m *Market) Clear(demand float64) (Clearing, error) {
	if demand < 0 {
		return Clearing{}, fmt.Errorf("market: negative demand %g", demand)
	}
	c := Clearing{Demand: demand}
	remaining := demand
	for _, o := range m.offers {
		if remaining <= 0 {
			break
		}
		take := min(remaining, o.Quantity)
		c.Dispatched = append(c.Dispatched, Dispatch{Generator: o.Generator, Quantity: take, Price: o.Price})
		c.Cost += take * o.Price
		c.MarginalPrice = o.Price
		remaining -= take
	}
	if remaining > 0 {
		c.Shortfall = remaining
	}
	return c, nil
}

// ClearDay clears every hour of a load profile and returns the 24
// hourly clearings plus the day's total procurement cost.
func (m *Market) ClearDay(load core.Load) ([core.HoursPerDay]Clearing, float64, error) {
	var out [core.HoursPerDay]Clearing
	var total float64
	for h, demand := range load {
		c, err := m.Clear(demand)
		if err != nil {
			return out, 0, err
		}
		if c.Shortfall > 0 {
			return out, 0, fmt.Errorf("market: hour %d demand %g exceeds capacity %g", h, demand, m.capacity)
		}
		out[h] = c
		total += c.Cost
	}
	return out, total, nil
}

// ScarcityMultiplier prices demand beyond the stack's capacity in the
// derived Pricer: the most expensive offer's price times this factor.
const ScarcityMultiplier = 10

// Pricer converts the merit-order supply curve into a convex
// piecewise-linear pricing.Pricer usable anywhere a Quadratic is: the
// cost of an hourly load is the pay-as-bid cost of serving it, and
// loads beyond the stack's capacity are charged a scarcity rate so the
// function stays defined (and strongly discourages such schedules).
func (m *Market) Pricer() (pricing.Pricer, error) {
	steps := make([]pricing.Step, 0, len(m.offers)+1)
	var cum float64
	lastPrice := 0.0
	for _, o := range m.offers {
		if len(steps) > 0 && steps[len(steps)-1].Rate == o.Price {
			// Merge equal-price offers into one segment.
			cum += o.Quantity
			lastPrice = o.Price
			continue
		}
		steps = append(steps, pricing.Step{Threshold: cum, Rate: o.Price})
		cum += o.Quantity
		lastPrice = o.Price
	}
	steps = append(steps, pricing.Step{Threshold: cum, Rate: lastPrice * ScarcityMultiplier})
	return pricing.NewPiecewise(steps)
}
