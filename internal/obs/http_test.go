package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetDaysTotal).Add(2)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "enki_netproto_days_total 2") {
		t.Errorf("/metrics missing series:\n%s", body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profiles") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestServeDebugBindsEphemeralPort(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over ServeDebug = %d", resp.StatusCode)
	}
}
