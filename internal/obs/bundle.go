package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// BundleSchema versions the debug-bundle manifest; enkidebug refuses
// schemas it does not know.
const BundleSchema = 1

// BundleSources are the live surfaces a debug bundle captures. Nil
// fields are simply absent from the bundle — a bare agent bundles only
// its recorder ring and runtime profiles, a cluster center bundles the
// whole operator plane.
type BundleSources struct {
	Operator *Operator         // registry, status, ledger, SLO, federation
	Recorder *Recorder         // flight-recorder ring → events.jsonl
	Tracer   *Tracer           // span ring → spans.jsonl (non-destructive)
	Config   map[string]string // effective process configuration
}

// registry returns the snapshot source (the operator's registry when
// wired, the process default otherwise).
func (s BundleSources) registry() *Registry {
	if s.Operator != nil && s.Operator.Registry != nil {
		return s.Operator.Registry
	}
	return Default()
}

// BundleManifest is the bundle's self-description (manifest.json, the
// first archive entry): why and when it was captured, the build that
// captured it, the effective configuration, the incident coordinates
// the trigger implicated, and the archive's own table of contents.
type BundleManifest struct {
	Schema         int               `json:"schema"`
	Reason         string            `json:"reason"`
	CapturedUnixNS int64             `json:"capturedUnixNs"`
	GoVersion      string            `json:"goVersion"`
	GOOS           string            `json:"goos"`
	GOARCH         string            `json:"goarch"`
	PID            int               `json:"pid"`
	Hostname       string            `json:"hostname,omitempty"`
	Build          map[string]string `json:"build,omitempty"`
	Config         map[string]string `json:"config,omitempty"`

	// Incident coordinates: the day being settled at capture and the
	// shards (with their trace IDs) that were failed or degraded.
	ImplicatedDay    int      `json:"implicatedDay"`
	ImplicatedShards []int    `json:"implicatedShards,omitempty"`
	ImplicatedTraces []string `json:"implicatedTraces,omitempty"`

	Files []string `json:"files"`
	// Notes records non-fatal capture problems (a busy CPU profiler,
	// an unreadable hostname) so a partial bundle explains itself.
	Notes []string `json:"notes,omitempty"`
}

// bundleStatus is the status.json payload: the day view plus the
// per-shard table, captured together.
type bundleStatus struct {
	Day    DayStatus     `json:"day"`
	Shards []ShardStatus `json:"shards"`
}

type bundleFile struct {
	name string
	data []byte
}

// writeBundle captures every wired source and writes the tar.gz
// archive to w. cpuProfile > 0 adds a blocking CPU profile of that
// length (the trigger holds its lock for the duration).
func writeBundle(w io.Writer, reason string, now time.Time, cpuProfile time.Duration, src BundleSources) error {
	manifest := BundleManifest{
		Schema:         BundleSchema,
		Reason:         reason,
		CapturedUnixNS: now.UnixNano(),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		PID:            os.Getpid(),
		Config:         src.Config,
		ImplicatedDay:  -1,
	}
	if host, err := os.Hostname(); err == nil {
		manifest.Hostname = host
	} else {
		manifest.Notes = append(manifest.Notes, "hostname: "+err.Error())
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		manifest.Build = map[string]string{"path": info.Path}
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOFLAGS":
				manifest.Build[kv.Key] = kv.Value
			}
		}
	}

	var files []bundleFile
	add := func(name string, data []byte, err error) {
		if err != nil {
			manifest.Notes = append(manifest.Notes, name+": "+err.Error())
			return
		}
		files = append(files, bundleFile{name: name, data: data})
	}
	addJSON := func(name string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		add(name, data, err)
	}

	if src.Recorder != nil {
		var buf bytes.Buffer
		if err := src.Recorder.WriteJSONL(&buf); err != nil {
			manifest.Notes = append(manifest.Notes, "events.jsonl: "+err.Error())
		} else {
			files = append(files, bundleFile{name: "events.jsonl", data: buf.Bytes()})
		}
	}
	addJSON("metrics.json", src.registry().Snapshot())

	implicated := map[string]bool{}
	op := src.Operator
	if op != nil && op.Status != nil {
		st := bundleStatus{Day: op.Status.DayStatus(), Shards: op.Status.ShardStatuses()}
		if st.Shards == nil {
			st.Shards = []ShardStatus{}
		}
		manifest.ImplicatedDay = st.Day.Day
		for _, sh := range st.Shards {
			if sh.Healthy && sh.Err == "" && sh.Absent == 0 && sh.Substituted == 0 {
				continue
			}
			manifest.ImplicatedShards = append(manifest.ImplicatedShards, sh.Shard)
			if sh.TraceID != "" && !implicated[sh.TraceID] {
				implicated[sh.TraceID] = true
				manifest.ImplicatedTraces = append(manifest.ImplicatedTraces, sh.TraceID)
			}
		}
		addJSON("status.json", st)
	}
	if op != nil && op.SLO != nil {
		statuses := op.SampleSLO(now)
		addJSON("slo.json", SLOReport{
			Objectives: statuses,
			Windows:    op.SLO.Windows(),
			Spec:       op.SLO.Objectives(),
		})
	}
	if op != nil && op.Federation != nil {
		addJSON("federation.json", op.Federation.Snapshot())
	}
	if op != nil && op.Ledger != nil {
		var buf bytes.Buffer
		for _, line := range op.Ledger.LedgerTail(MaxLedgerTail) {
			buf.Write(line)
			buf.WriteByte('\n')
		}
		files = append(files, bundleFile{name: "ledger.jsonl", data: buf.Bytes()})
	}
	if src.Tracer != nil {
		spans := src.Tracer.Snapshot()
		if len(implicated) > 0 {
			kept := spans[:0]
			for _, sp := range spans {
				if implicated[sp.TraceID] {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		sort.SliceStable(spans, func(i, j int) bool {
			a, b := spans[i].Identity(), spans[j].Identity()
			if a != b {
				return a < b
			}
			return spans[i].StartNS < spans[j].StartNS
		})
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		var encErr error
		for _, sp := range spans {
			if err := enc.Encode(sp); err != nil {
				encErr = err
				break
			}
		}
		add("spans.jsonl", buf.Bytes(), encErr)
	}

	for _, name := range []string{"heap", "goroutine"} {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			manifest.Notes = append(manifest.Notes, "pprof/"+name+".pprof: "+err.Error())
			continue
		}
		files = append(files, bundleFile{name: "pprof/" + name + ".pprof", data: buf.Bytes()})
	}
	if cpuProfile > 0 {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Another profiler (e.g. /debug/pprof/profile) is running;
			// the bundle stays useful without the CPU sample.
			manifest.Notes = append(manifest.Notes, "pprof/cpu.pprof: "+err.Error())
		} else {
			time.Sleep(cpuProfile)
			pprof.StopCPUProfile()
			files = append(files, bundleFile{name: "pprof/cpu.pprof", data: buf.Bytes()})
		}
	}

	manifest.Files = make([]string, 0, len(files)+1)
	manifest.Files = append(manifest.Files, "manifest.json")
	for _, f := range files {
		manifest.Files = append(manifest.Files, f.name)
	}

	manifestData, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: bundle manifest: %w", err)
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	writeEntry := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := writeEntry("manifest.json", manifestData); err != nil {
		return fmt.Errorf("obs: bundle write: %w", err)
	}
	for _, f := range files {
		if err := writeEntry(f.name, f.data); err != nil {
			return fmt.Errorf("obs: bundle write %s: %w", f.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("obs: bundle close: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("obs: bundle close: %w", err)
	}
	return nil
}

// Bundle is a parsed debug bundle — what enkidebug analyzes offline.
// Sections absent from the archive stay nil/empty.
type Bundle struct {
	Manifest   BundleManifest
	Events     []Event
	Metrics    *Snapshot
	Day        *DayStatus
	Shards     []ShardStatus
	SLO        *SLOReport
	Federation *FederatedSnapshot
	Ledger     []json.RawMessage
	Spans      []Span
	Profiles   map[string]int // pprof entry name → size in bytes
}

// ReadBundle opens and parses a debug-bundle archive from disk.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundleFrom(f)
}

// ReadBundleFrom parses a debug-bundle tar.gz stream.
func ReadBundleFrom(r io.Reader) (*Bundle, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("obs: bundle gzip: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	b := &Bundle{Profiles: map[string]int{}}
	sawManifest := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("obs: bundle tar: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("obs: bundle read %s: %w", hdr.Name, err)
		}
		switch {
		case hdr.Name == "manifest.json":
			if err := json.Unmarshal(data, &b.Manifest); err != nil {
				return nil, fmt.Errorf("obs: bundle manifest: %w", err)
			}
			sawManifest = true
		case hdr.Name == "events.jsonl":
			events, err := ReadEvents(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			b.Events = events
		case hdr.Name == "metrics.json":
			var snap Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return nil, fmt.Errorf("obs: bundle metrics: %w", err)
			}
			b.Metrics = &snap
		case hdr.Name == "status.json":
			var st bundleStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("obs: bundle status: %w", err)
			}
			day := st.Day
			b.Day = &day
			b.Shards = st.Shards
		case hdr.Name == "slo.json":
			var rep SLOReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return nil, fmt.Errorf("obs: bundle slo: %w", err)
			}
			b.SLO = &rep
		case hdr.Name == "federation.json":
			var fed FederatedSnapshot
			if err := json.Unmarshal(data, &fed); err != nil {
				return nil, fmt.Errorf("obs: bundle federation: %w", err)
			}
			b.Federation = &fed
		case hdr.Name == "ledger.jsonl":
			for _, line := range bytes.Split(data, []byte{'\n'}) {
				if len(bytes.TrimSpace(line)) == 0 {
					continue
				}
				b.Ledger = append(b.Ledger, json.RawMessage(append([]byte(nil), line...)))
			}
		case hdr.Name == "spans.jsonl":
			spans, err := ReadSpans(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			b.Spans = spans
		case strings.HasPrefix(hdr.Name, "pprof/"):
			b.Profiles[strings.TrimPrefix(hdr.Name, "pprof/")] = len(data)
		}
	}
	if !sawManifest {
		return nil, fmt.Errorf("obs: bundle has no manifest.json")
	}
	if b.Manifest.Schema != BundleSchema {
		return nil, fmt.Errorf("obs: bundle schema %d, want %d", b.Manifest.Schema, BundleSchema)
	}
	return b, nil
}
