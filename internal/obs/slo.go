package obs

import (
	"errors"
	"fmt"
	"time"
)

// ObjectiveKind selects how an Objective turns registry series into a
// bad/total event stream.
type ObjectiveKind string

const (
	// ObjectiveLatency reads a histogram family: total is the
	// observation count, bad the observations above ThresholdMS.
	ObjectiveLatency ObjectiveKind = "latency"
	// ObjectiveRatio reads counter families: bad and total are the sums
	// of the Bad and Total families.
	ObjectiveRatio ObjectiveKind = "ratio"
	// ObjectiveValue reads a gauge family summed across labels: each
	// evaluation contributes one total event, bad when the reading sits
	// outside Target ± Tolerance.
	ObjectiveValue ObjectiveKind = "value"
)

// Objective is one declarative service-level objective evaluated as
// multi-window burn rates over the registry's existing series. Budget
// is the tolerated bad fraction (the error budget): a burn rate of 1.0
// means events are going bad at exactly the budgeted rate, above 1.0
// the budget is burning down.
type Objective struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Kind        ObjectiveKind `json:"kind"`
	Budget      float64       `json:"budget"`

	// Series names the histogram family (latency) or gauge family
	// (value) the objective reads.
	Series string `json:"series,omitempty"`
	// ThresholdMS bounds a latency objective's good observations.
	ThresholdMS float64 `json:"thresholdMs,omitempty"`
	// Bad and Total name the counter families of a ratio objective.
	Bad   []string `json:"bad,omitempty"`
	Total []string `json:"total,omitempty"`
	// Target and Tolerance band a value objective's gauge reading.
	Target    float64 `json:"target,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

func (o Objective) validate() error {
	if o.Name == "" {
		return errors.New("obs: objective needs a name")
	}
	if o.Budget <= 0 || o.Budget > 1 {
		return fmt.Errorf("obs: objective %s: budget %g outside (0, 1]", o.Name, o.Budget)
	}
	switch o.Kind {
	case ObjectiveLatency:
		if o.Series == "" || o.ThresholdMS <= 0 {
			return fmt.Errorf("obs: latency objective %s needs a series and a positive threshold", o.Name)
		}
	case ObjectiveRatio:
		if len(o.Bad) == 0 || len(o.Total) == 0 {
			return fmt.Errorf("obs: ratio objective %s needs bad and total counter families", o.Name)
		}
	case ObjectiveValue:
		if o.Series == "" || o.Tolerance < 0 {
			return fmt.Errorf("obs: value objective %s needs a series and a non-negative tolerance", o.Name)
		}
	default:
		return fmt.Errorf("obs: objective %s: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// DefaultObjectives is the operator plane's stock objective set: days
// settle promptly, days rarely degrade, shards rarely fail, and the
// Theorem 1 budget identity never drifts.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "day-settle-latency-p99",
			Description: "99% of settlement days complete within 10s end to end",
			Kind:        ObjectiveLatency,
			Series:      MetricNetDaySettleMS,
			ThresholdMS: 10_000,
			Budget:      0.01,
		},
		{
			Name:        "degraded-day-rate",
			Description: "at most 5% of days settle degraded (absent or substituted households)",
			Kind:        ObjectiveRatio,
			Bad:         []string{MetricNetDegradedDaysTotal},
			Total:       []string{MetricNetDaysTotal, MetricClusterDaysTotal},
			Budget:      0.05,
		},
		{
			Name:        "shard-failure-rate",
			Description: "at most 1% of shard settlement attempts fail outright",
			Kind:        ObjectiveRatio,
			Bad:         []string{MetricClusterShardFailures},
			Total:       []string{MetricClusterShardsSettled, MetricClusterShardFailures},
			Budget:      0.01,
		},
		{
			Name:        "budget-residual-zero",
			Description: "settlements keep the Theorem 1 identity Σp = ξ·κ to float tolerance",
			Kind:        ObjectiveRatio,
			Bad:         []string{MetricMechBudgetViolations},
			Total:       []string{MetricMechSettlementsTotal},
			Budget:      0.001,
		},
	}
}

// SLOWindow is one burn-rate evaluation horizon.
type SLOWindow struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"-"`
}

// DefaultSLOWindows are the standard multi-window alerting horizons: a
// fast window that pages on sharp burns and slower windows that catch
// sustained slow burns.
func DefaultSLOWindows() []SLOWindow {
	return []SLOWindow{
		{Name: "5m", Duration: 5 * time.Minute},
		{Name: "30m", Duration: 30 * time.Minute},
		{Name: "6h", Duration: 6 * time.Hour},
	}
}

// BurnRate is one objective's burn over one window: the bad/total event
// deltas between the window's baseline sample and now, the resulting
// bad share, and that share divided by the error budget.
type BurnRate struct {
	Window   string  `json:"window"`
	Bad      uint64  `json:"bad"`
	Total    uint64  `json:"total"`
	BadShare float64 `json:"badShare"`
	Rate     float64 `json:"rate"`
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Name        string        `json:"name"`
	Kind        ObjectiveKind `json:"kind"`
	Description string        `json:"description,omitempty"`
	Budget      float64       `json:"budget"`
	Healthy     bool          `json:"healthy"`
	Bad         uint64        `json:"bad"`   // lifetime bad events
	Total       uint64        `json:"total"` // lifetime total events
	Value       float64       `json:"value,omitempty"`
	Burn        []BurnRate    `json:"burn"`
}

// sloSample is one evaluation's cumulative bad/total readings, indexed
// by objective.
type sloSample struct {
	at         time.Time
	bad, total []uint64
}

// maxSLOSamples bounds the retained sample ring regardless of scrape
// rate; the oldest samples beyond the largest window age out anyway.
const maxSLOSamples = 8192

// SLOEngine evaluates declarative objectives as multi-window burn
// rates over the registry's series. It samples on demand (every
// /api/v1/slo request calls Sample) — no background goroutine — and
// exports its verdicts back into the registry as the enki_slo_* series.
type SLOEngine struct {
	reg        *Registry
	objectives []Objective
	windows    []SLOWindow
	samples    []sloSample
}

// NewSLOEngine validates the objectives and returns an engine reading
// from and exporting to reg (nil means the default registry). No
// windows means DefaultSLOWindows.
func NewSLOEngine(reg *Registry, objectives []Objective, windows ...SLOWindow) (*SLOEngine, error) {
	if reg == nil {
		reg = Default()
	}
	if len(windows) == 0 {
		windows = DefaultSLOWindows()
	}
	seen := make(map[string]bool, len(objectives))
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("obs: duplicate objective %s", o.Name)
		}
		seen[o.Name] = true
	}
	return &SLOEngine{
		reg:        reg,
		objectives: append([]Objective(nil), objectives...),
		windows:    append([]SLOWindow(nil), windows...),
	}, nil
}

// Objectives returns the engine's objective set.
func (e *SLOEngine) Objectives() []Objective {
	return append([]Objective(nil), e.objectives...)
}

// Windows returns the engine's burn-rate windows.
func (e *SLOEngine) Windows() []SLOWindow {
	return append([]SLOWindow(nil), e.windows...)
}

// Sample evaluates every objective at now: it reads the registry,
// appends a sample to the ring, prunes samples older than the largest
// window, computes per-window burn rates against the retained
// baselines, exports the enki_slo_* series, and returns the statuses.
// Not safe for concurrent use with itself; the Operator serializes it.
func (e *SLOEngine) Sample(now time.Time) []ObjectiveStatus {
	snap := e.reg.Snapshot()
	cur := sloSample{
		at:    now,
		bad:   make([]uint64, len(e.objectives)),
		total: make([]uint64, len(e.objectives)),
	}
	values := make([]float64, len(e.objectives))
	for i, o := range e.objectives {
		cur.bad[i], cur.total[i], values[i] = measureObjective(snap, o)
	}

	// Value objectives are sampled, not cumulative: fold the previous
	// sample's counts forward so each evaluation adds one event.
	if n := len(e.samples); n > 0 {
		prev := e.samples[n-1]
		for i, o := range e.objectives {
			if o.Kind == ObjectiveValue {
				cur.bad[i] += prev.bad[i]
				cur.total[i] += prev.total[i]
			}
		}
	}
	e.samples = append(e.samples, cur)
	e.prune(now)

	statuses := make([]ObjectiveStatus, len(e.objectives))
	for i, o := range e.objectives {
		st := ObjectiveStatus{
			Name:        o.Name,
			Kind:        o.Kind,
			Description: o.Description,
			Budget:      o.Budget,
			Bad:         cur.bad[i],
			Total:       cur.total[i],
			Value:       values[i],
			Healthy:     true,
		}
		if st.Total > 0 && float64(st.Bad)/float64(st.Total) > o.Budget {
			st.Healthy = false
		}
		for _, w := range e.windows {
			base := e.baseline(now.Add(-w.Duration))
			br := BurnRate{
				Window: w.Name,
				Bad:    cur.bad[i] - base.bad[i],
				Total:  cur.total[i] - base.total[i],
			}
			if br.Total > 0 {
				br.BadShare = float64(br.Bad) / float64(br.Total)
				br.Rate = br.BadShare / o.Budget
			}
			if br.Rate > 1 {
				st.Healthy = false
			}
			st.Burn = append(st.Burn, br)
			e.reg.Gauge(MetricSLOBurnRate, LabelObjective, o.Name, LabelWindow, w.Name).Set(br.Rate)
		}
		healthy := 1.0
		if !st.Healthy {
			healthy = 0
		}
		e.reg.Gauge(MetricSLOHealthy, LabelObjective, o.Name).Set(healthy)
		statuses[i] = st
	}
	e.reg.Counter(MetricSLOSamples).Inc()
	return statuses
}

// baseline returns the most recent sample at or before cutoff, or the
// oldest retained sample when all are newer. The current sample is the
// last element, so with a single sample the burn delta is zero.
func (e *SLOEngine) baseline(cutoff time.Time) sloSample {
	base := e.samples[0]
	for _, s := range e.samples {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	return base
}

// prune drops samples older than the largest window (keeping one
// pre-window sample as that window's baseline) and enforces the hard
// ring cap.
func (e *SLOEngine) prune(now time.Time) {
	var maxW time.Duration
	for _, w := range e.windows {
		if w.Duration > maxW {
			maxW = w.Duration
		}
	}
	cutoff := now.Add(-maxW)
	keepFrom := 0
	for i, s := range e.samples {
		if s.at.After(cutoff) {
			break
		}
		keepFrom = i // last sample at or before the cutoff stays
	}
	if keepFrom > 0 {
		e.samples = append(e.samples[:0], e.samples[keepFrom:]...)
	}
	if over := len(e.samples) - maxSLOSamples; over > 0 {
		e.samples = append(e.samples[:0], e.samples[over:]...)
	}
}

// measureObjective reads one objective's cumulative bad/total events
// (and, for value objectives, the current reading) from a snapshot.
func measureObjective(snap Snapshot, o Objective) (bad, total uint64, value float64) {
	switch o.Kind {
	case ObjectiveLatency:
		for k, h := range snap.Histograms {
			if baseName(k) != o.Series {
				continue
			}
			total += h.Count
			var good uint64
			for i, bound := range h.Bounds {
				if bound <= o.ThresholdMS && i < len(h.Buckets) {
					good += h.Buckets[i]
				}
			}
			bad += h.Count - good
		}
	case ObjectiveRatio:
		for _, fam := range o.Bad {
			bad += counterFamilySum(snap, fam)
		}
		for _, fam := range o.Total {
			total += counterFamilySum(snap, fam)
		}
	case ObjectiveValue:
		for k, v := range snap.Gauges {
			if baseName(k) == o.Series {
				value += v
			}
		}
		total = 1
		if value < o.Target-o.Tolerance || value > o.Target+o.Tolerance {
			bad = 1
		}
	}
	return bad, total, value
}

// counterFamilySum sums every label combination of one counter family.
func counterFamilySum(snap Snapshot, family string) uint64 {
	var sum uint64
	for k, v := range snap.Counters {
		if baseName(k) == family {
			sum += v
		}
	}
	return sum
}
