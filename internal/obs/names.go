package obs

import "strings"

// Metric names. Every series the repository registers is named here —
// CI lint greps for registrations whose name is a string literal
// outside this package. The "_ms" suffix marks wall-clock timing
// series, which Snapshot.DiffDeterministic exempts from the
// bit-identical Workers:1 vs Workers:N contract.
//
// DESIGN.md ("Observability") maps each metric to the equation or
// paper section it validates.
const (
	// internal/sched — per-scheduler allocation behaviour (Section IV-C).
	MetricSchedAllocateTotal      = "enki_sched_allocate_total"
	MetricSchedAllocateLatencyMS  = "enki_sched_allocate_latency_ms"
	MetricSchedDefermentSlots     = "enki_sched_deferment_slots_total"
	MetricSchedDeferredHouseholds = "enki_sched_deferred_households_total"

	// internal/solver — branch-and-bound search effort (Eq. 2). The
	// pruned counter is labeled by bound (LabelBound) so the cascade's
	// per-bound hit rates are visible; frontier tasks counts the
	// deterministic root-decomposition subtrees handed to the worker
	// pool, and candidates fixed counts root reduced-cost candidate
	// eliminations. The node-rate gauge is an instantaneous wall-clock
	// reading (nodes/s of the last solve) and, like every gauge, exempt
	// from the determinism contract.
	MetricSolverSolvesTotal      = "enki_solver_solves_total"
	MetricSolverNodesExpanded    = "enki_solver_nodes_expanded_total"
	MetricSolverNodesPruned      = "enki_solver_nodes_pruned_total"
	MetricSolverIncumbentUpdates = "enki_solver_incumbent_updates_total"
	MetricSolverLimitedTotal     = "enki_solver_limited_total"
	MetricSolverFrontierTasks    = "enki_solver_frontier_tasks_total"
	MetricSolverCandidatesFixed  = "enki_solver_candidates_fixed_total"
	MetricSolverNodeRate         = "enki_solver_node_rate"

	// internal/mechanism — per-day settlement quantities (Eqs. 4-8).
	MetricMechSettlementsTotal = "enki_mechanism_settlements_total"
	MetricMechFlexibilityScore = "enki_mechanism_flexibility_score"
	MetricMechDefectionScore   = "enki_mechanism_defection_score"
	MetricMechSocialCostScore  = "enki_mechanism_social_cost_score"
	MetricMechPaymentDollars   = "enki_mechanism_payment_dollars"
	MetricMechBudgetResidual   = "enki_mechanism_budget_residual_dollars"
	MetricMechPaymentSpread    = "enki_mechanism_payment_spread_dollars"
	MetricMechDayPAR           = "enki_mechanism_day_par"

	// internal/parallel — experiment engine utilization.
	MetricParallelJobsTotal   = "enki_parallel_jobs_total"
	MetricParallelJobErrors   = "enki_parallel_job_errors_total"
	MetricParallelWorkersBusy = "enki_parallel_workers_busy"
	MetricParallelQueueDepth  = "enki_parallel_queue_depth"

	// internal/netproto — Figure 1 protocol traffic and phases.
	MetricNetMessagesTotal  = "enki_netproto_messages_total"
	MetricNetBytesTotal     = "enki_netproto_bytes_total"
	MetricNetPhaseLatencyMS = "enki_netproto_phase_latency_ms"
	MetricNetTimeoutsTotal  = "enki_netproto_timeouts_total"
	MetricNetDaysTotal      = "enki_netproto_days_total"

	// internal/netproto — fault-tolerance layer: reconnect attempts and
	// session resumes (labeled by side), degraded-day settlement volume
	// (households billed from journaled reports via the Eq. 5 defector
	// path), injected chaos faults (labeled by action), and phase-message
	// replays served to resuming agents. The deadline-remaining series is
	// wall-clock ("_ms") and thus exempt from the determinism contract.
	MetricNetRetriesTotal             = "enki_netproto_retries_total"
	MetricNetResumesTotal             = "enki_netproto_resumes_total"
	MetricNetDegradedDaysTotal        = "enki_netproto_degraded_days_total"
	MetricNetSubstitutionsTotal       = "enki_netproto_substituted_households_total"
	MetricNetFaultsTotal              = "enki_netproto_faults_injected_total"
	MetricNetReplaysTotal             = "enki_netproto_replayed_messages_total"
	MetricNetPhaseDeadlineRemainingMS = "enki_netproto_phase_deadline_remaining_ms"

	// internal/netproto — batched wire framing and codec accounting.
	// Frames and messages-per-frame are deterministic for a given day's
	// content (framing depends only on batch size and message order);
	// codec bytes are deterministic per codec, which is what makes the
	// JSON-vs-binary delta in BENCH_net.json a stable quantity.
	MetricNetFramesTotal     = "enki_netproto_frames_total"
	MetricNetFrameMessages   = "enki_netproto_frame_messages"
	MetricNetCodecBytesTotal = "enki_netproto_codec_bytes_total"

	// internal/netproto — sharded cluster settlement: days and shards
	// settled, shard failures (chaos), and the per-shard settle latency
	// histogram ("_ms", exempt from the determinism contract). Shard
	// queue depth during a cluster day is the parallel engine's
	// enki_parallel_queue_depth gauge — the cluster schedules shards as
	// parallel jobs, so the engine's utilization series are its own.
	MetricClusterDaysTotal          = "enki_cluster_days_total"
	MetricClusterShardsSettled      = "enki_cluster_shards_settled_total"
	MetricClusterShardFailures      = "enki_cluster_shard_failures_total"
	MetricClusterShardSettleMS      = "enki_cluster_shard_settle_latency_ms"
	MetricClusterHouseholdsSettled  = "enki_cluster_households_settled_total"
	MetricClusterSubstitutionsTotal = "enki_cluster_substituted_households_total"

	// internal/netproto — operator plane: end-to-end day-settle latency
	// ("_ms", wall clock, exempt from the determinism contract; its
	// exemplars carry the slowest day's trace ID), and per-day absences
	// (households that were members at dawn but never reported).
	MetricNetDaySettleMS     = "enki_netproto_day_settle_latency_ms"
	MetricClusterAbsentTotal = "enki_cluster_absent_households_total"

	// internal/mechanism — Theorem 1 enforcement: settlements whose
	// Σp − ξ·κ residual left the floating-point tolerance band, and the
	// last settled day's signed deviation. The counter is deterministic
	// (a pure function of the settled bytes); the gauge, like every
	// gauge, holds the most recent day.
	MetricMechBudgetViolations  = "enki_mechanism_budget_violations_total"
	MetricMechTheorem1Deviation = "enki_mechanism_theorem1_deviation_dollars"

	// internal/obs — metrics federation: reports merged into the
	// cluster-wide view, labeled by the reporting side (shard or agent).
	MetricObsFederationReports = "enki_obs_federation_reports_total"

	// internal/netproto — agent-local series piggybacked to the center as
	// metricsReport messages when WithMetricsReporting is on: preferences
	// reported and days settled, both deterministic per household.
	MetricAgentReportsTotal = "enki_agent_reports_total"
	MetricAgentDaysSettled  = "enki_agent_days_settled_total"

	// internal/obs — SLO engine exports: per-objective-per-window burn
	// rate (error-budget consumption speed; 1.0 = burning exactly the
	// budget), per-objective health (1 healthy, 0 violated), and the
	// evaluation counter. All are wall-clock-window facts and, being
	// gauges plus a scrape-driven counter, outside the determinism
	// contract.
	MetricSLOBurnRate = "enki_slo_burn_rate"
	MetricSLOHealthy  = "enki_slo_healthy"
	MetricSLOSamples  = "enki_slo_samples_total"

	// internal/obs — the tracer's own health: spans evicted from the
	// bounded ring (a long -trace-out run outgrowing its retention).
	MetricObsTraceDropped = "enki_obs_trace_dropped_total"

	// internal/obs — flight recorder and debug-bundle trigger engine:
	// events captured into the recorder ring, events evicted when the
	// ring wraps, bundles written, bundle requests suppressed by the
	// rate limit, bundle writes that failed, and the last bundle's
	// write time (a wall-clock gauge, Unix seconds; 0 until the first
	// incident). Event captures are deterministic counts (payloads are
	// pure functions of the settled work); the drop counter depends
	// only on ring capacity and event volume.
	MetricObsRecorderEvents   = "enki_obs_recorder_events_total"
	MetricObsRecorderDropped  = "enki_obs_recorder_dropped_total"
	MetricObsBundleWrites     = "enki_obs_bundle_writes_total"
	MetricObsBundleSuppressed = "enki_obs_bundle_suppressed_total"
	MetricObsBundleErrors     = "enki_obs_bundle_errors_total"
	MetricObsBundleLastUnix   = "enki_obs_bundle_last_unix"

	// internal/netproto replica set — quorum-journal replication
	// health, labeled by replica ID (LabelReplica). Role is 1 on the
	// leader and 0 on followers; term counts elections; commit lag is
	// the gap between the longest held log and a replica's commit
	// watermark; failovers counts mid-day leader takeovers. All four
	// are pure functions of the replicated log and the kill schedule,
	// so they sit inside the Workers:1≡Workers:N determinism contract.
	MetricReplicaRole           = "enki_replica_role"
	MetricReplicaTerm           = "enki_replica_term"
	MetricReplicaCommitLag      = "enki_replica_commit_lag"
	MetricReplicaFailoversTotal = "enki_replica_failovers_total"
)

// Span names. Every span the repository starts is named here — the
// metric-lint CI step greps for Start{Span,Trace,Child,Remote} calls
// whose name is a string literal outside this package, exactly as it
// does for metric registrations.
const (
	// internal/netproto — one settlement day is one trace: a root day
	// span with per-phase children on the center, and remote children
	// on each agent sharing the day's trace ID via the wire context.
	SpanNetDay        = "netproto.day"
	SpanNetPhase      = "netproto.phase"
	SpanNetSettle     = "netproto.settle"
	SpanNetAgentPhase = "netproto.agent.phase"

	// internal/experiment — one simulated sweep day is one trace with
	// per-scheduler allocation children.
	SpanSweepDay      = "sweep.day"
	SpanSweepAllocate = "sweep.allocate"

	// internal/netproto cluster — each shard's settlement day is its own
	// trace (trace ID derived from the shard seed and day), so a
	// million-household day is a forest of shard traces rather than one
	// giant span tree.
	SpanClusterShard = "cluster.shard"
)

// Shared label keys.
const (
	LabelScheduler = "scheduler"
	LabelDirection = "direction"
	LabelPhase     = "phase"
	LabelSide      = "side"
	LabelAction    = "action"
	LabelBound     = "bound"
	LabelCodec     = "codec"
	LabelObjective = "objective"
	LabelWindow    = "window"
	LabelSource    = "source"
	LabelReplica   = "replica"
)

// Bound label values for the solver's pruned-nodes series: which bound
// of the cascade cut the subtree.
const (
	BoundSuperadditive = "superadditive"
	BoundWaterfill     = "waterfill"
	BoundRelaxation    = "relaxation"
	BoundChild         = "child"
	BoundMemo          = "memo"
)

// Side label values for netproto retry/resume series: which end of the
// link observed the event.
const (
	SideCenter = "center"
	SideAgent  = "agent"
)

// Direction label values for netproto traffic.
const (
	DirectionSent     = "sent"
	DirectionReceived = "received"
)

// Bucket layouts. A metric name maps to exactly one layout.
var (
	// LatencyBucketsMS spans 10µs to 10s, roughly ×3 per step — wide
	// enough for both greedy allocations (µs) and budgeted Optimal
	// solves (seconds).
	LatencyBucketsMS = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000}

	// ScoreBuckets covers the mechanism's normalized score band: Ψ_i
	// lives in [k/3, 3k] for k = 1 (Eq. 6), flexibility and defection
	// raw scores in [0, ~1.5).
	ScoreBuckets = []float64{0.05, 0.1, 0.2, 0.333, 0.5, 0.667, 1, 1.5, 2, 3, 5}

	// DollarBuckets covers per-household payments and per-day budget
	// quantities for neighborhood sizes up to a few hundred.
	DollarBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

	// BatchBuckets covers messages-per-frame counts for the batched wire
	// framing, from the TCP path's single-message frames up to the
	// cluster links' kilomessage batches.
	BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// IsTimingMetric reports whether the series key names a wall-clock
// timing metric, which the determinism contract exempts.
func IsTimingMetric(key string) bool {
	return strings.HasSuffix(baseName(key), "_ms")
}
