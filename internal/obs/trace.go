package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one finished traced operation. Name and Labels identify what
// ran, and TraceID/SpanID/ParentID place it in a causal tree; all five
// are deterministic across worker counts and process boundaries. Only
// the timestamps record when, and they are not deterministic.
type Span struct {
	Name     string   `json:"name"`
	Labels   []string `json:"labels,omitempty"` // alternating key/value pairs
	TraceID  string   `json:"traceId,omitempty"`
	SpanID   string   `json:"spanId,omitempty"`
	ParentID string   `json:"parentId,omitempty"` // empty for a trace's root span
	StartNS  int64    `json:"startNs"`
	EndNS    int64    `json:"endNs"`
}

// Duration returns the span's wall-clock length.
func (s Span) Duration() time.Duration { return time.Duration(s.EndNS - s.StartNS) }

// Identity renders the timing-free identity of a span: its name plus
// labels, in the same key-sorted form metric series use, extended with
// the trace/span/parent IDs when the span belongs to a trace. Two runs
// of the same seeded workload produce the same multiset of identities
// at any worker count — IDs are derived, never random.
func (s Span) Identity() string {
	key := metricKey(s.Name, s.Labels)
	if s.TraceID == "" {
		return key
	}
	return key + " trace=" + s.TraceID + " span=" + s.SpanID + " parent=" + s.ParentID
}

// TraceContext identifies a position in a trace for propagation across
// goroutine and process boundaries; netproto carries it on every wire
// message so both sides of a settlement day share one trace.
type TraceContext struct {
	TraceID string `json:"traceId,omitempty"`
	SpanID  string `json:"spanId,omitempty"`
}

// mix64 is the SplitMix64 finalizer (the same bijective avalanche mix
// internal/dist uses for labeled stream splits); obs keeps its own copy
// to stay dependency-free.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const goldenGamma = 0x9e3779b97f4a7c15

// hash64 folds a string to 64 bits (FNV-1a) for span-ID derivation.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// DeriveTraceID derives a 16-hex-digit trace ID from the given parts —
// typically a seed plus the day number or job coordinates. It is a pure
// function of the parts (no randomness, no clock), so the same seeded
// workload names the same traces in every run, worker count, and
// process.
func DeriveTraceID(parts ...uint64) string {
	s := uint64(goldenGamma)
	for _, p := range parts {
		s = mix64(s ^ mix64(p+goldenGamma))
	}
	return fmt.Sprintf("%016x", s)
}

// DefaultSpanCapacity bounds a tracer's retained spans unless
// SetCapacity overrides it: a long-running `enkid -trace-out` daemon
// keeps the most recent spans instead of growing without bound.
const DefaultSpanCapacity = 1 << 16

// Tracer collects spans into a bounded ring. The zero value is a
// disabled tracer whose Start is a near-free atomic load; Enable turns
// collection on. When the ring is full the oldest span is overwritten
// and the obs_trace_dropped_total counter incremented.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	spans   []Span
	head    int  // next overwrite position once the ring is full
	full    bool // the ring has wrapped at least once
	cap     int  // 0 means DefaultSpanCapacity
}

var defaultTracer Tracer

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return &defaultTracer }

// Enable turns span collection on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns span collection off (already-collected spans remain).
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetCapacity bounds the number of retained spans (n <= 0 restores
// DefaultSpanCapacity). Call it before collection starts; shrinking a
// ring that already holds more spans is not supported.
func (t *Tracer) SetCapacity(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	t.cap = n
}

// capacity returns the effective ring size; callers hold t.mu.
func (t *Tracer) capacity() int {
	if t.cap == 0 {
		return DefaultSpanCapacity
	}
	return t.cap
}

// record appends a finished span, overwriting the oldest when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	c := t.capacity()
	if !t.full && len(t.spans) < c {
		t.spans = append(t.spans, s)
		t.mu.Unlock()
		return
	}
	t.full = true
	t.spans[t.head] = s
	t.head = (t.head + 1) % c
	t.mu.Unlock()
	Default().Counter(MetricObsTraceDropped).Inc()
}

// ActiveSpan is an in-flight span; End finishes and records it. A nil
// ActiveSpan (from a disabled tracer) is a no-op for every method.
type ActiveSpan struct {
	tracer *Tracer
	span   Span
	state  uint64 // deterministic ID-derivation state
	seq    uint64 // children started so far (serial per parent)
}

// Start opens a flat span with no trace lineage. Labels are alternating
// key/value pairs. Returns nil when the tracer is disabled; every
// method on nil is safe.
func (t *Tracer) Start(name string, labels ...string) *ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &ActiveSpan{
		tracer: t,
		span:   Span{Name: name, Labels: labels, StartNS: time.Now().UnixNano()},
	}
}

// StartTrace opens the root span of the trace named by traceID
// (typically from DeriveTraceID). The root's span ID is derived from
// the trace ID and the span's identity, so it is reproducible.
func (t *Tracer) StartTrace(traceID, name string, labels ...string) *ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return t.open(traceID, "", hash64(traceID), 0, name, labels)
}

// StartRemote opens a span as a child of a parent living in another
// process, identified by a TraceContext received on the wire. An empty
// context degrades to a flat Start.
func (t *Tracer) StartRemote(ctx TraceContext, name string, labels ...string) *ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	if ctx.TraceID == "" {
		return t.Start(name, labels...)
	}
	return t.open(ctx.TraceID, ctx.SpanID, hash64(ctx.TraceID+"/"+ctx.SpanID), 0, name, labels)
}

// StartChild opens a child span of s. Children of one parent must be
// started serially (the day cycle is); the per-parent sequence number
// keeps same-named siblings' IDs distinct and deterministic.
func (s *ActiveSpan) StartChild(name string, labels ...string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.seq++
	return s.tracer.open(s.span.TraceID, s.span.SpanID, s.state, s.seq, name, labels)
}

// open derives the child ID from (parent state, seq, identity) and
// starts the span. The derivation is the SplitMix64 label fold, so span
// IDs are pure functions of the trace lineage — never of scheduling.
func (t *Tracer) open(traceID, parentID string, parentState, seq uint64, name string, labels []string) *ActiveSpan {
	state := mix64(parentState ^ mix64(hash64(metricKey(name, labels))+(seq+1)*goldenGamma))
	return &ActiveSpan{
		tracer: t,
		span: Span{
			Name:     name,
			Labels:   labels,
			TraceID:  traceID,
			SpanID:   fmt.Sprintf("%016x", state),
			ParentID: parentID,
			StartNS:  time.Now().UnixNano(),
		},
		state: state,
	}
}

// ID returns the span's derived ID ("" for nil or flat spans).
func (s *ActiveSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.SpanID
}

// Context returns the span's propagation context (zero for nil spans).
func (s *ActiveSpan) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID}
}

// End finishes the span and appends it to its tracer.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.EndNS = time.Now().UnixNano()
	s.tracer.record(s.span)
}

// StartSpan opens a flat span on the default tracer.
func StartSpan(name string, labels ...string) *ActiveSpan {
	return defaultTracer.Start(name, labels...)
}

// Drain removes and returns all collected spans, sorted by identity
// (name + labels + trace lineage) and then start time, so the export is
// deterministic regardless of how concurrent spans interleaved.
func (t *Tracer) Drain() []Span {
	t.mu.Lock()
	spans := t.spans
	if t.full {
		// Restore insertion order: oldest retained span first.
		ordered := make([]Span, 0, len(spans))
		ordered = append(ordered, spans[t.head:]...)
		ordered = append(ordered, spans[:t.head]...)
		spans = ordered
	}
	t.spans = nil
	t.head = 0
	t.full = false
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i].Identity(), spans[j].Identity()
		if a != b {
			return a < b
		}
		return spans[i].StartNS < spans[j].StartNS
	})
	return spans
}

// Snapshot returns a copy of the collected spans in insertion order
// without draining the ring. The debug-bundle writer uses it so a
// bundle capture never erases spans a later -trace-out export would
// drain.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	if t.full {
		out = append(out, t.spans[t.head:]...)
		out = append(out, t.spans[:t.head]...)
		return out
	}
	return append(out, t.spans...)
}

// WriteJSONL drains the tracer and writes one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Drain() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadSpans loads a span-trace JSONL stream (the WriteJSONL format).
// Blank lines are skipped; a corrupt or truncated final line — the
// signature of a crash during export — is skipped rather than failing
// the whole trace, but corruption followed by further valid spans is an
// error.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	var pending error
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(scanner.Bytes(), &s); err != nil {
			if pending != nil {
				return nil, pending
			}
			pending = fmt.Errorf("obs: trace line %d: %w", line, err)
			continue
		}
		if pending != nil {
			return nil, pending
		}
		out = append(out, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}

// Identities drains the tracer and returns the sorted timing-free span
// identities — the replayable per-day trace the determinism tests
// compare across worker counts.
func (t *Tracer) Identities() []string {
	spans := t.Drain()
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Identity()
	}
	sort.Strings(out)
	return out
}
