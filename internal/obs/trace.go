package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one finished traced operation. Name and Labels identify what
// ran (and are deterministic across worker counts); the timestamps
// record when (and are not).
type Span struct {
	Name    string   `json:"name"`
	Labels  []string `json:"labels,omitempty"` // alternating key/value pairs
	StartNS int64    `json:"startNs"`
	EndNS   int64    `json:"endNs"`
}

// Duration returns the span's wall-clock length.
func (s Span) Duration() time.Duration { return time.Duration(s.EndNS - s.StartNS) }

// Identity renders the timing-free identity of a span: its name plus
// labels, in the same key-sorted form metric series use. Two runs of
// the same seeded workload produce the same multiset of identities at
// any worker count.
func (s Span) Identity() string { return metricKey(s.Name, s.Labels) }

// Tracer collects spans. The zero value is a disabled tracer whose
// Start is a near-free atomic load; Enable turns collection on.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	spans   []Span
}

var defaultTracer Tracer

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return &defaultTracer }

// Enable turns span collection on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns span collection off (already-collected spans remain).
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// ActiveSpan is an in-flight span; End finishes and records it. A nil
// ActiveSpan (from a disabled tracer) is a no-op.
type ActiveSpan struct {
	tracer *Tracer
	span   Span
}

// Start opens a span. Labels are alternating key/value pairs. Returns
// nil when the tracer is disabled; End on nil is safe.
func (t *Tracer) Start(name string, labels ...string) *ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &ActiveSpan{
		tracer: t,
		span:   Span{Name: name, Labels: labels, StartNS: time.Now().UnixNano()},
	}
}

// End finishes the span and appends it to its tracer.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.EndNS = time.Now().UnixNano()
	s.tracer.mu.Lock()
	s.tracer.spans = append(s.tracer.spans, s.span)
	s.tracer.mu.Unlock()
}

// StartSpan opens a span on the default tracer.
func StartSpan(name string, labels ...string) *ActiveSpan {
	return defaultTracer.Start(name, labels...)
}

// Drain removes and returns all collected spans, sorted by identity
// (name + labels) and then start time, so the export is deterministic
// regardless of how concurrent spans interleaved.
func (t *Tracer) Drain() []Span {
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i].Identity(), spans[j].Identity()
		if a != b {
			return a < b
		}
		return spans[i].StartNS < spans[j].StartNS
	})
	return spans
}

// WriteJSONL drains the tracer and writes one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Drain() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Identities drains the tracer and returns the sorted timing-free span
// identities — the replayable per-day trace the determinism tests
// compare across worker counts.
func (t *Tracer) Identities() []string {
	spans := t.Drain()
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Identity()
	}
	sort.Strings(out)
	return out
}
