package obs

import (
	"sort"
	"sync"
)

// MetricsReport is the compact federated form of one source's metrics:
// what a cluster shard or a household agent piggybacks onto the
// settlement wire (a metricsReport message) so the center can assemble
// a cluster-wide view. Source names the reporting dimension
// ("shard/0003", "agent/42"); the snapshot carries the source's
// cumulative series, so re-reporting replaces rather than accumulates.
type MetricsReport struct {
	Source   string   `json:"source"`
	Snapshot Snapshot `json:"snapshot"`
}

// Federation merges per-source MetricsReports into a cluster-wide
// registry view. It is the center-side half of metrics federation:
// each report replaces its source's previous snapshot (reports carry
// cumulative series), and FederatedSnapshot folds the sources together
// in sorted-source order, so the merged view is a pure function of the
// set of reports — independent of arrival order and worker count,
// which is what keeps the Workers:1≡Workers:N DiffDeterministic
// contract intact for non-timing series.
type Federation struct {
	mu      sync.Mutex
	reg     *Registry // receives the federation's own counters; nil = Default
	sources map[string]Snapshot
}

// NewFederation returns an empty federation reporting its own health
// counters into reg (nil means the default registry).
func NewFederation(reg *Registry) *Federation {
	if reg == nil {
		reg = Default()
	}
	return &Federation{reg: reg, sources: make(map[string]Snapshot)}
}

// Report merges one source's report, replacing the source's previous
// snapshot. Reports without a source name are dropped.
func (f *Federation) Report(r *MetricsReport) {
	if r == nil || r.Source == "" {
		return
	}
	f.mu.Lock()
	f.sources[r.Source] = r.Snapshot
	f.mu.Unlock()
	f.reg.Counter(MetricObsFederationReports, LabelSource, sourceKind(r.Source)).Inc()
}

// sourceKind maps a source name to its dimension label: the prefix
// before the '/' ("shard", "agent"), or the whole name when unscoped.
func sourceKind(source string) string {
	for i := 0; i < len(source); i++ {
		if source[i] == '/' {
			return source[:i]
		}
	}
	return source
}

// Sources returns the reporting source names, sorted.
func (f *Federation) Sources() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.sources))
	for s := range f.sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// FederatedSnapshot is the cluster-wide metrics view: every source's
// own snapshot plus their deterministic merge.
type FederatedSnapshot struct {
	Sources map[string]Snapshot `json:"sources"`
	Merged  Snapshot            `json:"merged"`
}

// Snapshot assembles the federated view at this instant.
func (f *Federation) Snapshot() FederatedSnapshot {
	f.mu.Lock()
	sources := make(map[string]Snapshot, len(f.sources))
	for name, snap := range f.sources {
		sources[name] = snap
	}
	f.mu.Unlock()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]Snapshot, len(names))
	for i, name := range names {
		parts[i] = sources[name]
	}
	return FederatedSnapshot{Sources: sources, Merged: MergeSnapshots(parts...)}
}

// MergeSnapshots folds snapshots left to right into one: counters sum,
// gauges sum (so per-shard residual/cost/revenue gauges aggregate to
// their cluster totals), and histograms with identical bounds sum
// bucket-wise. A histogram whose bounds disagree with the series'
// first-seen layout is skipped — a name maps to one bucket layout (see
// names.go), so this only triggers across incompatible builds.
// Exemplars keep the per-bucket maximum across sources. The fold order
// is the argument order; callers wanting determinism pass sources in
// sorted-name order, as Federation.Snapshot does.
func MergeSnapshots(parts ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, p := range parts {
		for _, k := range unionKeys(p.Counters, nil) {
			out.Counters[k] += p.Counters[k]
		}
		for _, k := range unionKeys(p.Gauges, nil) {
			out.Gauges[k] += p.Gauges[k]
		}
		for _, k := range unionKeys(p.Histograms, nil) {
			h := p.Histograms[k]
			acc, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = copyHistogramSnapshot(h)
				continue
			}
			if !sameBounds(acc.Bounds, h.Bounds) || len(acc.Buckets) != len(h.Buckets) {
				continue // incompatible layout: first-seen wins
			}
			for i := range h.Buckets {
				acc.Buckets[i] += h.Buckets[i]
			}
			acc.Count += h.Count
			acc.Sum += h.Sum
			acc.Exemplars = mergeExemplars(acc.Exemplars, h.Exemplars)
			out.Histograms[k] = acc
		}
	}
	return out
}

func copyHistogramSnapshot(h HistogramSnapshot) HistogramSnapshot {
	return HistogramSnapshot{
		Bounds:    append([]float64(nil), h.Bounds...),
		Buckets:   append([]uint64(nil), h.Buckets...),
		Count:     h.Count,
		Sum:       h.Sum,
		Exemplars: append([]Exemplar(nil), h.Exemplars...),
	}
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeExemplars keeps, per bucket, the slowest exemplar seen across
// sources. Both inputs are sorted by bucket (Histogram.Exemplars emits
// them that way); the output is too.
func mergeExemplars(a, b []Exemplar) []Exemplar {
	if len(b) == 0 {
		return a
	}
	byBucket := make(map[int]Exemplar, len(a)+len(b))
	for _, e := range a {
		byBucket[e.Bucket] = e
	}
	for _, e := range b {
		if cur, ok := byBucket[e.Bucket]; !ok || e.Value > cur.Value {
			byBucket[e.Bucket] = e
		}
	}
	out := make([]Exemplar, 0, len(byBucket))
	for _, e := range byBucket {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}
