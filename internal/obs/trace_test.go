package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledIsNoop(t *testing.T) {
	var tr Tracer
	span := tr.Start("x", "k", "v")
	if span != nil {
		t.Error("disabled tracer should return nil span")
	}
	span.End() // must not panic
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("disabled tracer collected %d spans", len(got))
	}
}

func TestTracerCollectsAndSortsDeterministically(t *testing.T) {
	var tr Tracer
	tr.Enable()
	// Finish spans out of identity order, concurrently.
	var wg sync.WaitGroup
	for _, day := range []string{"3", "1", "2"} {
		wg.Add(1)
		go func(day string) {
			defer wg.Done()
			s := tr.Start("netproto.day", "day", day)
			s.End()
		}(day)
	}
	wg.Wait()
	ids := tr.Identities()
	want := []string{
		`netproto.day{day="1"}`,
		`netproto.day{day="2"}`,
		`netproto.day{day="3"}`,
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d spans, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("identity[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

// buildDayTrace simulates one settlement day's span tree: a root day
// span, two phase children, and a remote agent child hanging off the
// first phase via the wire context.
func buildDayTrace(tr *Tracer, traceID string) {
	root := tr.StartTrace(traceID, "netproto.day", "day", "1")
	pref := root.StartChild("netproto.phase", "phase", "preference")
	remote := tr.StartRemote(pref.Context(), "netproto.agent.phase", "phase", "preference")
	remote.End()
	pref.End()
	cons := root.StartChild("netproto.phase", "phase", "consumption")
	cons.End()
	root.End()
}

func TestHierarchicalSpansDeterministicIDs(t *testing.T) {
	tid := DeriveTraceID(7, 1)
	if tid != DeriveTraceID(7, 1) {
		t.Fatal("DeriveTraceID not deterministic")
	}
	if tid == DeriveTraceID(7, 2) {
		t.Error("distinct parts should yield distinct trace IDs")
	}

	collect := func() []Span {
		var tr Tracer
		tr.Enable()
		buildDayTrace(&tr, tid)
		return tr.Drain()
	}
	first, second := collect(), collect()
	if len(first) != 4 {
		t.Fatalf("got %d spans, want 4", len(first))
	}
	for i := range first {
		if first[i].Identity() != second[i].Identity() {
			t.Errorf("span %d identity not reproducible: %q vs %q",
				i, first[i].Identity(), second[i].Identity())
		}
	}

	byName := make(map[string]Span)
	for _, s := range first {
		byName[s.Name+"/"+s.Labels[1]] = s
		if s.TraceID != tid {
			t.Errorf("span %s has trace %s, want %s", s.Name, s.TraceID, tid)
		}
		if s.SpanID == "" {
			t.Errorf("span %s missing span ID", s.Name)
		}
	}
	root := byName["netproto.day/1"]
	if root.ParentID != "" {
		t.Errorf("root span has parent %q", root.ParentID)
	}
	pref := byName["netproto.phase/preference"]
	if pref.ParentID != root.SpanID {
		t.Errorf("phase parent %s, want root %s", pref.ParentID, root.SpanID)
	}
	agent := byName["netproto.agent.phase/preference"]
	if agent.ParentID != pref.SpanID {
		t.Errorf("remote child parent %s, want phase %s", agent.ParentID, pref.SpanID)
	}
	cons := byName["netproto.phase/consumption"]
	if cons.SpanID == pref.SpanID {
		t.Error("sibling spans share an ID")
	}
}

func TestSameNamedSiblingsDistinctIDs(t *testing.T) {
	var tr Tracer
	tr.Enable()
	root := tr.StartTrace(DeriveTraceID(1), "netproto.day", "day", "1")
	a := root.StartChild("netproto.phase", "phase", "preference")
	a.End()
	b := root.StartChild("netproto.phase", "phase", "preference")
	b.End()
	root.End()
	if a.ID() == b.ID() {
		t.Error("same-named siblings must get distinct IDs via the sequence number")
	}
}

func TestNilActiveSpanSafe(t *testing.T) {
	var tr Tracer // disabled
	root := tr.StartTrace(DeriveTraceID(1), "netproto.day")
	if root != nil {
		t.Fatal("disabled tracer should return nil root")
	}
	child := root.StartChild("netproto.phase")
	if child != nil {
		t.Fatal("child of nil should be nil")
	}
	child.End()
	if got := root.Context(); got != (TraceContext{}) {
		t.Errorf("nil Context() = %+v", got)
	}
	if root.ID() != "" {
		t.Error("nil ID() should be empty")
	}
	if tr.StartRemote(TraceContext{TraceID: "x"}, "netproto.phase") != nil {
		t.Error("disabled StartRemote should be nil")
	}
}

func TestTracerRingCapAndDropCounter(t *testing.T) {
	Default().Reset()
	var tr Tracer
	tr.Enable()
	tr.SetCapacity(3)
	for day := 1; day <= 5; day++ {
		s := tr.Start("netproto.day", "day", string(rune('0'+day)))
		s.End()
	}
	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("ring retained %d spans, want 3", len(spans))
	}
	// Oldest two (days 1, 2) were evicted; the newest three remain.
	for _, s := range spans {
		if day := s.Labels[1]; day == "1" || day == "2" {
			t.Errorf("evicted span day=%s still retained", day)
		}
	}
	if got := Default().Snapshot().Counters[MetricObsTraceDropped]; got != 2 {
		t.Errorf("dropped counter = %d, want 2", got)
	}
}

func TestReadSpansRoundTripAndTruncation(t *testing.T) {
	var tr Tracer
	tr.Enable()
	buildDayTrace(&tr, DeriveTraceID(3, 9))
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("read %d spans, want 4", len(spans))
	}

	// A truncated final line (crash during export) is skipped...
	spans, err = ReadSpans(strings.NewReader(buf.String() + `{"name":"cut`))
	if err != nil || len(spans) != 4 {
		t.Errorf("truncated tail: got %d spans, err %v; want 4, nil", len(spans), err)
	}
	// ...but corruption in the middle is a real error.
	if _, err := ReadSpans(strings.NewReader(`{"name":"cut` + "\n" + buf.String())); err == nil {
		t.Error("mid-stream corruption should be rejected")
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	var tr Tracer
	tr.Enable()
	s := tr.Start("sweep.day", "pop", "10", "round", "0")
	s.End()
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSONL lines, want 1", len(lines))
	}
	var span Span
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if span.Name != "sweep.day" || span.EndNS < span.StartNS {
		t.Errorf("decoded span %+v malformed", span)
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("WriteJSONL should drain, %d spans remain", len(got))
	}
}
