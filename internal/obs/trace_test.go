package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledIsNoop(t *testing.T) {
	var tr Tracer
	span := tr.Start("x", "k", "v")
	if span != nil {
		t.Error("disabled tracer should return nil span")
	}
	span.End() // must not panic
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("disabled tracer collected %d spans", len(got))
	}
}

func TestTracerCollectsAndSortsDeterministically(t *testing.T) {
	var tr Tracer
	tr.Enable()
	// Finish spans out of identity order, concurrently.
	var wg sync.WaitGroup
	for _, day := range []string{"3", "1", "2"} {
		wg.Add(1)
		go func(day string) {
			defer wg.Done()
			s := tr.Start("netproto.day", "day", day)
			s.End()
		}(day)
	}
	wg.Wait()
	ids := tr.Identities()
	want := []string{
		`netproto.day{day="1"}`,
		`netproto.day{day="2"}`,
		`netproto.day{day="3"}`,
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d spans, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("identity[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	var tr Tracer
	tr.Enable()
	s := tr.Start("sweep.day", "pop", "10", "round", "0")
	s.End()
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSONL lines, want 1", len(lines))
	}
	var span Span
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if span.Name != "sweep.day" || span.EndNS < span.StartNS {
		t.Errorf("decoded span %+v malformed", span)
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("WriteJSONL should drain, %d spans remain", len(got))
	}
}
