package obs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trigger-engine defaults: how often a breach may produce a bundle and
// how many bundles the directory retains before the oldest is pruned.
const (
	DefaultBundleInterval  = time.Minute
	DefaultBundleRetention = 8
)

// TriggerConfig configures the debug-bundle trigger engine.
type TriggerConfig struct {
	// Dir is the bundle output directory (created if absent). Required.
	Dir string
	// MinInterval rate-limits captures: a Fire within MinInterval of
	// the previous bundle is suppressed, so a flapping objective cannot
	// flood the disk. 0 means DefaultBundleInterval.
	MinInterval time.Duration
	// MaxBundles bounds disk retention; the oldest bundles beyond it
	// are deleted after each write. 0 means DefaultBundleRetention.
	MaxBundles int
	// CPUProfile, when positive, adds a blocking CPU profile of that
	// length to each bundle (the ISSUE's 5s capture; 0 skips it, which
	// tests and fast-exit tools want).
	CPUProfile time.Duration
	// Config is the effective process configuration recorded in the
	// bundle manifest.
	Config map[string]string
	// Clock overrides time.Now for the rate-limit tests.
	Clock func() time.Time
}

// BundleStatus is the trigger's observable state — what
// /api/v1/debug/bundle GET and enkiops report.
type BundleStatus struct {
	LastPath   string `json:"lastPath,omitempty"`
	LastReason string `json:"lastReason,omitempty"`
	LastUnixNS int64  `json:"lastUnixNs,omitempty"`
	Writes     uint64 `json:"writes"`
	Suppressed uint64 `json:"suppressed"`
	Errors     uint64 `json:"errors"`
}

// Trigger is the incident-capture engine: it fires on SLO-objective
// breaches, degraded or failed shard days, SIGUSR1, or an operator's
// POST, and writes a rate-limited, retention-bounded debug bundle on
// each accepted fire.
type Trigger struct {
	cfg TriggerConfig
	src BundleSources

	mu       sync.Mutex
	lastFire time.Time
	stat     BundleStatus
}

// NewTrigger validates cfg, creates the bundle directory, and returns
// the engine.
func NewTrigger(cfg TriggerConfig, src BundleSources) (*Trigger, error) {
	if cfg.Dir == "" {
		return nil, errors.New("obs: trigger needs a bundle directory")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultBundleInterval
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultBundleRetention
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: bundle dir: %w", err)
	}
	return &Trigger{cfg: cfg, src: src}, nil
}

// Status returns the trigger's current counters and last-bundle info.
func (t *Trigger) Status() BundleStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stat
}

// Fire captures one debug bundle for the given reason. A fire within
// MinInterval of the previous bundle is suppressed and returns ("",
// nil) — suppression is the rate limiter working, not a failure. On
// success the bundle path is returned and retention pruned.
func (t *Trigger) Fire(reason string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.cfg.Clock()
	if !t.lastFire.IsZero() && now.Sub(t.lastFire) < t.cfg.MinInterval {
		t.stat.Suppressed++
		Default().Counter(MetricObsBundleSuppressed).Inc()
		return "", nil
	}
	t.lastFire = now

	name := fmt.Sprintf("bundle-%s-%s.tar.gz", now.UTC().Format("20060102T150405.000000000"), sanitizeReason(reason))
	path := filepath.Join(t.cfg.Dir, name)
	if err := t.write(path, reason, now); err != nil {
		t.stat.Errors++
		Default().Counter(MetricObsBundleErrors).Inc()
		return "", err
	}

	t.stat.LastPath = path
	t.stat.LastReason = reason
	t.stat.LastUnixNS = now.UnixNano()
	t.stat.Writes++
	Default().Counter(MetricObsBundleWrites).Inc()
	Default().Gauge(MetricObsBundleLastUnix).Set(float64(now.Unix()))
	t.src.Recorder.Record(Event{Kind: EventTrigger, Shard: -1, Action: reason})
	t.prune()
	return path, nil
}

// write captures the bundle to a temp file and renames it into place,
// so a reader never sees a half-written archive.
func (t *Trigger) write(path, reason string, now time.Time) error {
	tmp, err := os.CreateTemp(t.cfg.Dir, ".bundle-*.tmp")
	if err != nil {
		return fmt.Errorf("obs: bundle create: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeBundle(tmp, reason, now, t.cfg.CPUProfile, t.src); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: bundle close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: bundle rename: %w", err)
	}
	return nil
}

// prune deletes the oldest bundles beyond MaxBundles. Bundle names
// start with a UTC timestamp, so lexical order is capture order.
func (t *Trigger) prune() {
	entries, err := os.ReadDir(t.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "bundle-") && strings.HasSuffix(name, ".tar.gz") {
			bundles = append(bundles, name)
		}
	}
	sort.Strings(bundles)
	for len(bundles) > t.cfg.MaxBundles {
		os.Remove(filepath.Join(t.cfg.Dir, bundles[0]))
		bundles = bundles[1:]
	}
}

// CheckSLO fires on the first unhealthy objective in the sample.
// Returns the bundle path ("" when healthy or rate-limited).
func (t *Trigger) CheckSLO(statuses []ObjectiveStatus) (string, error) {
	for _, st := range statuses {
		if !st.Healthy {
			return t.Fire("slo:" + st.Name)
		}
	}
	return "", nil
}

// CheckShards fires on the first failed shard, or — when none failed —
// the first degraded one (absent or substituted households, which the
// Eq. 5 defector path settled around).
func (t *Trigger) CheckShards(shards []ShardStatus) (string, error) {
	for _, sh := range shards {
		if !sh.Healthy || sh.Err != "" {
			return t.Fire(fmt.Sprintf("shard-failed:%d", sh.Shard))
		}
	}
	for _, sh := range shards {
		if sh.Absent > 0 || sh.Substituted > 0 {
			return t.Fire(fmt.Sprintf("shard-degraded:%d", sh.Shard))
		}
	}
	return "", nil
}

// Watch runs the breach loop until ctx is done: every interval it
// samples the runtime into the recorder, evaluates the SLO engine, and
// checks shard health, firing a bundle on any breach. The rate limiter
// makes the loop idempotent while a breach persists.
func (t *Trigger) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		t.src.Recorder.SampleRuntime()
		op := t.src.Operator
		if op == nil {
			continue
		}
		if statuses := op.SampleSLO(t.cfg.Clock()); statuses != nil {
			if _, err := t.CheckSLO(statuses); err != nil {
				Logger().Error("bundle capture failed", "err", err)
			}
		}
		if op.Status != nil {
			if _, err := t.CheckShards(op.Status.ShardStatuses()); err != nil {
				Logger().Error("bundle capture failed", "err", err)
			}
		}
	}
}

// sanitizeReason folds a fire reason into a filename-safe slug.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(reason) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	if b.Len() == 0 {
		return "manual"
	}
	return b.String()
}
