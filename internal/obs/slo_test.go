package obs

import (
	"testing"
	"time"
)

func sloTime() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func TestSLODefaultObjectivesValidate(t *testing.T) {
	if _, err := NewSLOEngine(NewRegistry(), DefaultObjectives()); err != nil {
		t.Fatalf("default objectives must validate: %v", err)
	}
}

func TestSLOEngineRejectsBadObjectives(t *testing.T) {
	cases := []Objective{
		{Name: "", Kind: ObjectiveRatio, Budget: 0.1, Bad: []string{"a"}, Total: []string{"b"}},
		{Name: "no-budget", Kind: ObjectiveRatio, Bad: []string{"a"}, Total: []string{"b"}},
		{Name: "latency-no-series", Kind: ObjectiveLatency, Budget: 0.1, ThresholdMS: 5},
		{Name: "ratio-no-total", Kind: ObjectiveRatio, Budget: 0.1, Bad: []string{"a"}},
		{Name: "bad-kind", Kind: ObjectiveKind("nope"), Budget: 0.1},
	}
	for _, o := range cases {
		if _, err := NewSLOEngine(NewRegistry(), []Objective{o}); err == nil {
			t.Fatalf("objective %+v should be rejected", o)
		}
	}
	dup := Objective{Name: "twice", Kind: ObjectiveRatio, Budget: 0.1, Bad: []string{"a"}, Total: []string{"b"}}
	if _, err := NewSLOEngine(NewRegistry(), []Objective{dup, dup}); err == nil {
		t.Fatal("duplicate objective names should be rejected")
	}
}

func TestSLORatioBurnRate(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, []Objective{{
		Name:   "degraded",
		Kind:   ObjectiveRatio,
		Budget: 0.05,
		Bad:    []string{MetricNetDegradedDaysTotal},
		Total:  []string{MetricNetDaysTotal},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := sloTime()
	reg.Counter(MetricNetDaysTotal).Add(100)
	eng.Sample(t0)

	// One minute later 10 more days settled, all degraded: the 5m window
	// sees 10/10 bad (burn 200×budget) while the lifetime share stays
	// healthy at 10/110.
	reg.Counter(MetricNetDaysTotal).Add(10)
	reg.Counter(MetricNetDegradedDaysTotal).Add(10)
	st := eng.Sample(t0.Add(time.Minute))[0]
	if st.Bad != 10 || st.Total != 110 {
		t.Fatalf("lifetime bad/total = %d/%d, want 10/110", st.Bad, st.Total)
	}
	fast := st.Burn[0]
	if fast.Window != "5m" || fast.Bad != 10 || fast.Total != 10 {
		t.Fatalf("5m burn = %+v, want 10 bad of 10", fast)
	}
	if fast.Rate != 1.0/0.05 {
		t.Fatalf("5m rate = %g, want %g", fast.Rate, 1.0/0.05)
	}
	if st.Healthy {
		t.Fatal("burning 20x budget must be unhealthy")
	}
	if got := reg.Gauge(MetricSLOBurnRate, LabelObjective, "degraded", LabelWindow, "5m").Value(); got != fast.Rate {
		t.Fatalf("exported burn gauge = %g, want %g", got, fast.Rate)
	}
	if got := reg.Gauge(MetricSLOHealthy, LabelObjective, "degraded").Value(); got != 0 {
		t.Fatalf("exported health gauge = %g, want 0", got)
	}
}

func TestSLOLatencyObjectiveCountsSlowObservations(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, []Objective{{
		Name:        "settle-fast",
		Kind:        ObjectiveLatency,
		Budget:      0.25,
		Series:      MetricNetDaySettleMS,
		ThresholdMS: 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram(MetricNetDaySettleMS, LatencyBucketsMS)
	h.Observe(1)  // good: lands in bound 1 ≤ 10
	h.Observe(10) // good: lands exactly on the 10ms bound
	h.Observe(25) // bad: lands in bound 30 > 10
	st := eng.Sample(sloTime())[0]
	if st.Bad != 1 || st.Total != 3 {
		t.Fatalf("latency bad/total = %d/%d, want 1/3", st.Bad, st.Total)
	}
	if st.Healthy {
		t.Fatal("lifetime 1/3 bad against a 0.25 budget must be unhealthy")
	}
}

func TestSLOValueObjectiveBandsGauge(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, []Objective{{
		Name:      "residual-zero",
		Kind:      ObjectiveValue,
		Budget:    0.5,
		Series:    MetricMechBudgetResidual,
		Target:    0,
		Tolerance: 1e-6,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := sloTime()
	reg.Gauge(MetricMechBudgetResidual).Set(0)
	st := eng.Sample(t0)[0]
	if st.Bad != 0 || st.Total != 1 || !st.Healthy {
		t.Fatalf("in-band value objective: %+v", st)
	}
	// Value samples fold forward: a second evaluation out of band makes
	// lifetime 1 bad of 2 total.
	reg.Gauge(MetricMechBudgetResidual).Set(3.5)
	st = eng.Sample(t0.Add(time.Minute))[0]
	if st.Bad != 1 || st.Total != 2 || st.Value != 3.5 {
		t.Fatalf("out-of-band value objective: %+v", st)
	}
	if st.Healthy {
		t.Fatal("out-of-band residual must be unhealthy")
	}
}

func TestSLOPruneKeepsWindowBaseline(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, []Objective{{
		Name:   "r",
		Kind:   ObjectiveRatio,
		Budget: 0.5,
		Bad:    []string{MetricNetDegradedDaysTotal},
		Total:  []string{MetricNetDaysTotal},
	}}, SLOWindow{Name: "1m", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t0 := sloTime()
	for i := 0; i < 10; i++ {
		reg.Counter(MetricNetDaysTotal).Add(1)
		eng.Sample(t0.Add(time.Duration(i) * 10 * time.Second))
	}
	// Only ~the last window plus one baseline sample should be retained.
	if n := len(eng.samples); n > 8 {
		t.Fatalf("prune retained %d samples for a 1m window at 10s cadence", n)
	}
	st := eng.Sample(t0.Add(100 * time.Second))
	if br := st[0].Burn[0]; br.Total == 0 || br.Total > 7 {
		t.Fatalf("window delta after prune = %+v, want a ~1m slice", br)
	}
}
