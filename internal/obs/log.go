package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The process logger. Defaults to text on stderr at Info; the cmd/
// binaries reconfigure it from -log-level/-log-format via LogFlags.
var currentLogger atomic.Pointer[slog.Logger]

func init() {
	currentLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// Logger returns the shared structured logger.
func Logger() *slog.Logger { return currentLogger.Load() }

// SetLogger replaces the shared logger (tests, custom sinks).
func SetLogger(l *slog.Logger) {
	if l != nil {
		currentLogger.Store(l)
	}
}

// LogOptions holds the values of the shared logging flags.
type LogOptions struct {
	Level  string // debug, info, warn, error
	Format string // text, json
}

// LogFlags registers the shared -log-level and -log-format flags on fs
// so every cmd/ binary exposes identical logging controls. Call Apply
// after fs.Parse.
func LogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{}
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&o.Format, "log-format", "text", "log format: text or json")
	return o
}

// Apply builds a slog.Logger from the parsed flag values, installs it
// as the shared logger, and returns it. w defaults to os.Stderr.
func (o *LogOptions) Apply(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown -log-level %q (want debug, info, warn, or error)", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch strings.ToLower(o.Format) {
	case "text", "":
		handler = slog.NewTextHandler(w, opts)
	case "json":
		handler = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", o.Format)
	}
	l := slog.New(handler)
	SetLogger(l)
	return l, nil
}
