package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// assertFiniteBurnGauges fails if any exported enki_slo_burn_rate gauge
// is NaN or Inf — the satellite contract for empty windows, short
// history, and never-incremented counters.
func assertFiniteBurnGauges(t *testing.T, reg *Registry) {
	t.Helper()
	snap := reg.Snapshot()
	found := 0
	for k, v := range snap.Gauges {
		if !strings.HasPrefix(k, MetricSLOBurnRate) {
			continue
		}
		found++
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("gauge %s = %v, want finite", k, v)
		}
	}
	if found == 0 {
		t.Fatal("no enki_slo_burn_rate gauges exported")
	}
}

// TestSLOEmptyRegistryNoNaN: sampling a registry where none of the
// objective series exist yet must report every objective healthy with
// zero (not NaN) burn rates.
func TestSLOEmptyRegistryNoNaN(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, DefaultObjectives())
	if err != nil {
		t.Fatal(err)
	}
	statuses := eng.Sample(time.Now())
	for _, st := range statuses {
		if !st.Healthy {
			t.Errorf("objective %s unhealthy with no events", st.Name)
		}
		for _, br := range st.Burn {
			if br.Total != 0 || br.Bad != 0 {
				t.Errorf("%s/%s burn = %+v, want zero deltas", st.Name, br.Window, br)
			}
			if math.IsNaN(br.Rate) || math.IsInf(br.Rate, 0) || br.Rate != 0 {
				t.Errorf("%s/%s rate = %v, want 0", st.Name, br.Window, br.Rate)
			}
			if math.IsNaN(br.BadShare) || math.IsInf(br.BadShare, 0) {
				t.Errorf("%s/%s bad share = %v, want finite", st.Name, br.Window, br.BadShare)
			}
		}
	}
	assertFiniteBurnGauges(t, reg)
}

// TestSLOSingleSampleWindow: the first-ever sample is its own baseline,
// so every window's burn delta is zero — a fresh engine cannot page.
func TestSLOSingleSampleWindow(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetDegradedDaysTotal).Inc()
	reg.Counter(MetricNetDaysTotal).Add(100)
	eng, err := NewSLOEngine(reg, DefaultObjectives())
	if err != nil {
		t.Fatal(err)
	}
	statuses := eng.Sample(time.Now())
	for _, st := range statuses {
		for _, br := range st.Burn {
			if br.Total != 0 {
				t.Errorf("%s/%s window delta = %+v on the first sample, want zero", st.Name, br.Window, br)
			}
			if math.IsNaN(br.Rate) || math.IsInf(br.Rate, 0) {
				t.Errorf("%s/%s rate = %v", st.Name, br.Window, br.Rate)
			}
		}
	}
	assertFiniteBurnGauges(t, reg)
}

// TestSLOShortHistoryUsesOldestBaseline: with less history than the 5m
// fast window, every window falls back to the oldest retained sample —
// deltas stay consistent and finite instead of extrapolating.
func TestSLOShortHistoryUsesOldestBaseline(t *testing.T) {
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, DefaultObjectives())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	eng.Sample(base) // baseline: all zero
	reg.Counter(MetricNetDegradedDaysTotal).Add(3)
	reg.Counter(MetricNetDaysTotal).Add(10)
	// 90 seconds of history — far less than any window.
	statuses := eng.Sample(base.Add(90 * time.Second))
	for _, st := range statuses {
		if st.Name != "degraded-day-rate" {
			continue
		}
		if st.Healthy {
			t.Error("30% degraded days reported healthy")
		}
		for _, br := range st.Burn {
			if br.Bad != 3 || br.Total != 10 {
				t.Errorf("window %s delta = %+v, want 3/10 from the oldest baseline", br.Window, br)
			}
			if math.Abs(br.Rate-(0.3/0.05)) > 1e-9 {
				t.Errorf("window %s rate = %v, want 6", br.Window, br.Rate)
			}
		}
	}
	assertFiniteBurnGauges(t, reg)
}

// TestSLONeverIncrementedCounters: a ratio objective whose total family
// never moves keeps rate 0 and health green across repeated samples —
// no division by the zero total.
func TestSLONeverIncrementedCounters(t *testing.T) {
	reg := NewRegistry()
	obj := []Objective{{
		Name:   "ghost-ratio",
		Kind:   ObjectiveRatio,
		Budget: 0.01,
		Bad:    []string{MetricClusterShardFailures},
		Total:  []string{MetricClusterShardsSettled},
	}}
	eng, err := NewSLOEngine(reg, obj)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		statuses := eng.Sample(base.Add(time.Duration(i) * time.Minute))
		st := statuses[0]
		if !st.Healthy || st.Bad != 0 || st.Total != 0 {
			t.Fatalf("sample %d: %+v", i, st)
		}
		for _, br := range st.Burn {
			if br.Rate != 0 || math.IsNaN(br.BadShare) {
				t.Fatalf("sample %d window %s: %+v", i, br.Window, br)
			}
		}
	}
	assertFiniteBurnGauges(t, reg)
}

// TestSLOValueObjectiveZeroTolerance: a value objective with tolerance
// 0 (exact-match band) still evaluates finitely when the gauge is
// absent, and flags the first sample where the reading drifts.
func TestSLOValueObjectiveZeroTolerance(t *testing.T) {
	reg := NewRegistry()
	obj := []Objective{{
		Name:      "residual-exact",
		Kind:      ObjectiveValue,
		Budget:    0.5,
		Series:    MetricMechBudgetResidual,
		Target:    0,
		Tolerance: 0,
	}}
	eng, err := NewSLOEngine(reg, obj)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	st := eng.Sample(base)[0]
	if !st.Healthy || st.Bad != 0 || st.Total != 1 {
		t.Fatalf("absent gauge sample = %+v", st)
	}
	reg.Gauge(MetricMechBudgetResidual).Set(0.25)
	st = eng.Sample(base.Add(time.Minute))[0]
	if st.Bad != 1 {
		t.Fatalf("drifted gauge not flagged: %+v", st)
	}
	assertFiniteBurnGauges(t, reg)
}
