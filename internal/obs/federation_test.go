package obs

import (
	"encoding/json"
	"testing"
)

func shardSnapshot(days uint64, residual float64, settleMS float64, trace string) Snapshot {
	reg := NewRegistry()
	reg.Counter(MetricClusterShardsSettled).Add(days)
	reg.Gauge(MetricMechBudgetResidual).Set(residual)
	reg.Histogram(MetricClusterShardSettleMS, LatencyBucketsMS).ObserveExemplar(settleMS, trace)
	return reg.Snapshot()
}

func TestFederationMergeSumsSources(t *testing.T) {
	fed := NewFederation(NewRegistry())
	fed.Report(&MetricsReport{Source: "shard/0001", Snapshot: shardSnapshot(3, 0, 2.5, "t1")})
	fed.Report(&MetricsReport{Source: "shard/0000", Snapshot: shardSnapshot(4, 0, 7.5, "t0")})

	snap := fed.Snapshot()
	if got := snap.Merged.Counters[MetricClusterShardsSettled]; got != 7 {
		t.Fatalf("merged shards settled = %d, want 7", got)
	}
	if got := snap.Merged.Gauges[MetricMechBudgetResidual]; got != 0 {
		t.Fatalf("merged residual = %g, want 0", got)
	}
	h := snap.Merged.Histograms[MetricClusterShardSettleMS]
	if h.Count != 2 || h.Sum != 10 {
		t.Fatalf("merged settle histogram count=%d sum=%g, want 2/10", h.Count, h.Sum)
	}
	if len(snap.Sources) != 2 {
		t.Fatalf("sources = %d, want 2", len(snap.Sources))
	}
}

func TestFederationReportReplacesCumulativeSnapshots(t *testing.T) {
	fed := NewFederation(NewRegistry())
	fed.Report(&MetricsReport{Source: "shard/0000", Snapshot: shardSnapshot(2, 0, 1, "a")})
	fed.Report(&MetricsReport{Source: "shard/0000", Snapshot: shardSnapshot(5, 0, 1, "a")})
	if got := fed.Snapshot().Merged.Counters[MetricClusterShardsSettled]; got != 5 {
		t.Fatalf("re-report should replace, not accumulate: got %d, want 5", got)
	}
}

func TestFederationMergeOrderIndependent(t *testing.T) {
	parts := []MetricsReport{
		{Source: "shard/0000", Snapshot: shardSnapshot(1, 0.5, 1, "a")},
		{Source: "shard/0001", Snapshot: shardSnapshot(2, -0.5, 2, "b")},
		{Source: "agent/7", Snapshot: shardSnapshot(3, 0, 3, "c")},
	}
	encode := func(order []int) string {
		fed := NewFederation(NewRegistry())
		for _, i := range order {
			r := parts[i]
			fed.Report(&r)
		}
		b, err := json.Marshal(fed.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := encode([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := encode(order); got != want {
			t.Fatalf("federated snapshot depends on arrival order %v", order)
		}
	}
}

func TestFederationIgnoresUnnamedReports(t *testing.T) {
	fed := NewFederation(NewRegistry())
	fed.Report(nil)
	fed.Report(&MetricsReport{Snapshot: shardSnapshot(1, 0, 1, "x")})
	if got := len(fed.Sources()); got != 0 {
		t.Fatalf("unnamed reports should be dropped, have %d sources", got)
	}
}

func TestFederationCountsReportsBySourceKind(t *testing.T) {
	reg := NewRegistry()
	fed := NewFederation(reg)
	fed.Report(&MetricsReport{Source: "shard/0000"})
	fed.Report(&MetricsReport{Source: "shard/0001"})
	fed.Report(&MetricsReport{Source: "agent/9"})
	snap := reg.Snapshot()
	if got := snap.Counters[metricKey(MetricObsFederationReports, []string{LabelSource, "shard"})]; got != 2 {
		t.Fatalf("shard reports counter = %d, want 2", got)
	}
	if got := snap.Counters[metricKey(MetricObsFederationReports, []string{LabelSource, "agent"})]; got != 1 {
		t.Fatalf("agent reports counter = %d, want 1", got)
	}
}

func TestMergeSnapshotsSkipsIncompatibleBounds(t *testing.T) {
	a := NewRegistry()
	a.Histogram(MetricMechPaymentDollars, DollarBuckets).Observe(1)
	b := NewRegistry()
	b.Histogram(MetricMechPaymentDollars, ScoreBuckets).Observe(2)
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	h := merged.Histograms[MetricMechPaymentDollars]
	if h.Count != 1 || !sameBounds(h.Bounds, DollarBuckets) {
		t.Fatalf("incompatible bounds must keep first-seen layout: count=%d", h.Count)
	}
}

func TestMergeExemplarsKeepsSlowestPerBucket(t *testing.T) {
	a := NewRegistry()
	a.Histogram(MetricNetDaySettleMS, LatencyBucketsMS).ObserveExemplar(2, "fast")
	b := NewRegistry()
	b.Histogram(MetricNetDaySettleMS, LatencyBucketsMS).ObserveExemplar(2.9, "slow")
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	ex := merged.Histograms[MetricNetDaySettleMS].Exemplars
	if len(ex) != 1 || ex[0].TraceID != "slow" || ex[0].Value != 2.9 {
		t.Fatalf("merged exemplars = %+v, want the slow trace", ex)
	}
}
