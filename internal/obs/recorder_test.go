package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecorderDisabledIsFree: the zero value captures nothing until
// enabled — the hot-path contract that lets hooks stay unconditional.
func TestRecorderDisabledIsFree(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: EventWireFrame, Shard: 0})
	if r.Len() != 0 {
		t.Fatalf("disabled recorder captured %d events", r.Len())
	}
	var nilRec *Recorder
	nilRec.Record(Event{Kind: EventWireFrame}) // must not panic
	nilRec.SampleRuntime()
	if nilRec.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
}

// TestRecorderRingBound: the ring holds at most its capacity, keeps the
// newest events in capture order, and counts each overwrite as a drop.
func TestRecorderRingBound(t *testing.T) {
	before := Default().Snapshot().Counters[MetricObsRecorderDropped]
	r := NewRecorder()
	r.SetCapacity(8)
	r.Enable()
	for i := 0; i < 20; i++ {
		r.Record(Event{Kind: EventWireFrame, Shard: -1, N: i})
	}
	if r.Len() != 8 {
		t.Fatalf("ring len = %d, want 8", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if want := 12 + i; e.N != want {
			t.Fatalf("event %d has N=%d, want %d (oldest overwritten first)", i, e.N, want)
		}
	}
	dropped := Default().Snapshot().Counters[MetricObsRecorderDropped] - before
	if dropped != 12 {
		t.Fatalf("dropped counter delta = %d, want 12", dropped)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("reset left %d events", r.Len())
	}
	if !r.Enabled() {
		t.Fatal("reset disabled the recorder")
	}
}

// TestRecorderIdentities: the identity multiset is sorted, excludes the
// wall-clock kinds (runtime, trigger), and ignores capture timestamps —
// the exemption mirroring the "_ms" metric rule.
func TestRecorderIdentities(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Record(Event{TimeNS: 100, Kind: EventPhase, Day: 1, Shard: -1, Phase: "request", Action: "start", N: 4})
	r.Record(Event{TimeNS: 200, Kind: EventRuntime, Shard: -1, N: 12})
	r.Record(Event{TimeNS: 300, Kind: EventTrigger, Shard: -1, Action: "manual"})
	r.Record(Event{TimeNS: 400, Kind: EventDay, Day: 1, Shard: -1, Action: "ok", N: 4})

	ids := r.Identities()
	if len(ids) != 2 {
		t.Fatalf("identities = %d, want 2 (timing kinds skipped): %v", len(ids), ids)
	}
	for _, id := range ids {
		if strings.Contains(id, "runtime") || strings.Contains(id, "trigger") {
			t.Fatalf("timing kind leaked into identities: %s", id)
		}
	}

	// Same events, different timestamps and order → same multiset.
	r2 := NewRecorder()
	r2.Enable()
	r2.Record(Event{TimeNS: 999, Kind: EventDay, Day: 1, Shard: -1, Action: "ok", N: 4})
	r2.Record(Event{TimeNS: 1, Kind: EventPhase, Day: 1, Shard: -1, Phase: "request", Action: "start", N: 4})
	ids2 := r2.Identities()
	if len(ids2) != 2 || ids[0] != ids2[0] || ids[1] != ids2[1] {
		t.Fatalf("identity multiset not timestamp/order independent:\n%v\n%v", ids, ids2)
	}
}

// TestRecorderJSONLRoundTrip: the dump format reloads losslessly, and
// the reader applies the crash-recovery contract shared with spans and
// the journal — a truncated last line is forgiven, corruption followed
// by valid events is not.
func TestRecorderJSONLRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Record(Event{TimeNS: 1, Kind: EventWireFrame, Shard: 2, Codec: "binary", Action: "sent", N: 4, Bytes: 512})
	r.Record(Event{TimeNS: 2, Kind: EventFault, Shard: 2, Action: "drop", N: 30})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 || events[0] != r.Events()[0] || events[1] != r.Events()[1] {
		t.Fatalf("round trip mismatch: %+v", events)
	}

	truncated := buf.String() + `{"kind":"wire`
	events, err = ReadEvents(strings.NewReader(truncated))
	if err != nil || len(events) != 2 {
		t.Fatalf("truncated tail not forgiven: %d events, err %v", len(events), err)
	}
	corrupt := `{"kind":"fault"}` + "\nnot json\n" + `{"kind":"day"}` + "\n"
	if _, err := ReadEvents(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
}

// TestRecorderSampleRuntime: the runtime snapshot records live process
// facts under the determinism-exempt kind.
func TestRecorderSampleRuntime(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.SampleRuntime()
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Kind != EventRuntime || e.N <= 0 || e.Bytes <= 0 {
		t.Fatalf("runtime snapshot = %+v, want positive goroutines and heap", e)
	}
	if !IsTimingEvent(e.Kind) {
		t.Fatal("runtime events must be determinism-exempt")
	}
}
