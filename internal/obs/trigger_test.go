package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestTrigger builds a trigger over the standard fake operator with
// a controllable clock.
func newTestTrigger(t *testing.T, cfg TriggerConfig, src BundleSources) *Trigger {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	trig, err := NewTrigger(cfg, src)
	if err != nil {
		t.Fatalf("NewTrigger: %v", err)
	}
	return trig
}

// tracedStatus is fakeStatus with a trace ID on the unhealthy shard,
// so bundle capture has an implicated trace to filter spans by.
type tracedStatus struct{}

func (tracedStatus) DayStatus() DayStatus { return fakeStatus{}.DayStatus() }

func (tracedStatus) ShardStatuses() []ShardStatus {
	shards := fakeStatus{}.ShardStatuses()
	shards[1].TraceID = "t-bbbb"
	return shards
}

func countBundles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "bundle-") && strings.HasSuffix(e.Name(), ".tar.gz") {
			n++
		}
	}
	return n
}

// TestTriggerRateLimitAndRetention: fires inside MinInterval are
// suppressed (one incident, one bundle), and retention deletes the
// oldest bundles beyond MaxBundles.
func TestTriggerRateLimitAndRetention(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	trig := newTestTrigger(t, TriggerConfig{
		Dir:         dir,
		MinInterval: 10 * time.Second,
		MaxBundles:  2,
		Clock:       func() time.Time { return now },
	}, BundleSources{})

	p1, err := trig.Fire("first")
	if err != nil || p1 == "" {
		t.Fatalf("first fire: path=%q err=%v", p1, err)
	}
	now = now.Add(time.Second)
	if p, err := trig.Fire("flap"); err != nil || p != "" {
		t.Fatalf("fire inside MinInterval not suppressed: path=%q err=%v", p, err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		now = now.Add(11 * time.Second)
		p, err := trig.Fire(fmt.Sprintf("breach-%d", i))
		if err != nil || p == "" {
			t.Fatalf("fire %d: path=%q err=%v", i, p, err)
		}
		paths = append(paths, p)
	}
	if got := countBundles(t, dir); got != 2 {
		t.Fatalf("retained bundles = %d, want 2 (retention pruned)", got)
	}
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatal("oldest bundle survived pruning")
	}
	if _, err := os.Stat(paths[2]); err != nil {
		t.Fatalf("newest bundle missing: %v", err)
	}

	st := trig.Status()
	if st.Writes != 4 || st.Suppressed != 1 || st.Errors != 0 {
		t.Fatalf("status = %+v, want 4 writes / 1 suppressed / 0 errors", st)
	}
	if st.LastPath != paths[2] || st.LastReason != "breach-2" {
		t.Fatalf("last-bundle status = %+v", st)
	}
}

// TestTriggerBundleRoundTrip: a bundle captured from a live operator
// plane reloads with the manifest implicating the unhealthy shard, the
// recorder ring, metrics, ledger tail, filtered spans, and profiles.
func TestTriggerBundleRoundTrip(t *testing.T) {
	op, _ := newTestOperator(t)
	op.Status = tracedStatus{}
	rec := NewRecorder()
	rec.Enable()
	rec.Record(Event{TimeNS: 1, Kind: EventFault, Shard: 1, Action: "drop", N: 30})
	rec.Record(Event{TimeNS: 2, Kind: EventShardDay, Day: 3, Shard: 1, Action: "degraded", N: 3})

	tr := &Tracer{}
	tr.Enable()
	// Shard 1 is implicated with trace t-bbbb: span export must keep
	// that trace's spans and drop the healthy day's.
	tr.StartTrace("t-aaaa", "netproto.day").End()
	tr.StartTrace("t-bbbb", "netproto.day").End()

	trig := newTestTrigger(t, TriggerConfig{MinInterval: time.Nanosecond}, BundleSources{
		Operator: op,
		Recorder: rec,
		Tracer:   tr,
		Config:   map[string]string{"codec": "binary"},
	})
	path, err := trig.Fire("unit:Test")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if base := filepath.Base(path); !strings.Contains(base, "unit-test") {
		t.Fatalf("reason not slugged into filename: %s", base)
	}

	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	m := b.Manifest
	if m.Schema != BundleSchema || m.Reason != "unit:Test" || m.PID != os.Getpid() {
		t.Fatalf("manifest = %+v", m)
	}
	if m.ImplicatedDay != 3 || len(m.ImplicatedShards) != 1 || m.ImplicatedShards[0] != 1 {
		t.Fatalf("implication = day %d shards %v, want day 3 shard 1", m.ImplicatedDay, m.ImplicatedShards)
	}
	if m.Config["codec"] != "binary" {
		t.Fatalf("config not captured: %v", m.Config)
	}
	if len(b.Events) != 2 || b.Events[0].Kind != EventFault {
		t.Fatalf("events = %+v", b.Events)
	}
	if b.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	if b.Day == nil || b.Day.Day != 3 || len(b.Shards) != 2 {
		t.Fatalf("status = %+v / %+v", b.Day, b.Shards)
	}
	if b.SLO == nil || len(b.SLO.Spec) == 0 || len(b.SLO.Objectives) == 0 {
		t.Fatal("SLO sample or spec missing")
	}
	if len(b.Ledger) != 3 {
		t.Fatalf("ledger lines = %d, want 3", len(b.Ledger))
	}
	if len(b.Spans) != 1 || b.Spans[0].TraceID != "t-bbbb" {
		t.Fatalf("spans not filtered to implicated traces: %+v", b.Spans)
	}
	if len(m.ImplicatedTraces) != 1 || m.ImplicatedTraces[0] != "t-bbbb" {
		t.Fatalf("implicated traces = %v", m.ImplicatedTraces)
	}
	if b.Profiles["heap.pprof"] == 0 || b.Profiles["goroutine.pprof"] == 0 {
		t.Fatalf("profiles = %v, want heap and goroutine", b.Profiles)
	}
	if _, ok := b.Profiles["cpu.pprof"]; ok {
		t.Fatal("CPU profile captured without being requested")
	}
	// The manifest's table of contents names every archive entry.
	if m.Files[0] != "manifest.json" || len(m.Files) < 8 {
		t.Fatalf("manifest files = %v", m.Files)
	}
}

// TestTriggerChecks: CheckSLO fires on the first unhealthy objective,
// CheckShards prefers failed shards over degraded ones, and healthy
// inputs fire nothing.
func TestTriggerChecks(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	trig := newTestTrigger(t, TriggerConfig{
		MinInterval: time.Nanosecond,
		Clock:       func() time.Time { now = now.Add(time.Second); return now },
	}, BundleSources{})

	if p, err := trig.CheckSLO([]ObjectiveStatus{{Name: "ok", Healthy: true}}); err != nil || p != "" {
		t.Fatalf("healthy SLO fired: %q %v", p, err)
	}
	p, err := trig.CheckSLO([]ObjectiveStatus{{Name: "ok", Healthy: true}, {Name: "degraded-day-rate", Healthy: false}})
	if err != nil || !strings.Contains(filepath.Base(p), "slo-degraded-day-rate") {
		t.Fatalf("SLO breach bundle = %q, err %v", p, err)
	}
	if p, err := trig.CheckShards([]ShardStatus{{Shard: 0, Healthy: true}}); err != nil || p != "" {
		t.Fatalf("healthy shards fired: %q %v", p, err)
	}
	p, err = trig.CheckShards([]ShardStatus{
		{Shard: 0, Healthy: true, Substituted: 1},
		{Shard: 2, Healthy: false, Err: "link down"},
	})
	if err != nil || !strings.Contains(filepath.Base(p), "shard-failed-2") {
		t.Fatalf("failed shard should outrank degraded: %q, err %v", p, err)
	}
}

// TestDebugBundleEndpoint: the operator API's on-demand capture — 404
// without a trigger, POST fires (429 when rate-limited), GET reports
// last-bundle status.
func TestDebugBundleEndpoint(t *testing.T) {
	op, srv := newTestOperator(t)
	resp, err := http.Post(srv.URL+"/api/v1/debug/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST without trigger = %d, want 404", resp.StatusCode)
	}

	op.Debug = newTestTrigger(t, TriggerConfig{MinInterval: time.Hour}, BundleSources{Operator: op})
	var fired struct {
		Path string `json:"path"`
	}
	resp, err = http.Post(srv.URL+"/api/v1/debug/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp, &fired); err != nil {
		t.Fatalf("decode fire response: %v", err)
	}
	if resp.StatusCode != http.StatusOK || fired.Path == "" {
		t.Fatalf("POST = %d path=%q", resp.StatusCode, fired.Path)
	}
	if _, err := os.Stat(fired.Path); err != nil {
		t.Fatalf("reported bundle missing: %v", err)
	}

	resp, err = http.Post(srv.URL+"/api/v1/debug/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited POST = %d, want 429", resp.StatusCode)
	}

	var st BundleStatus
	if r := getJSON(t, srv.URL+"/api/v1/debug/bundle", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", r.StatusCode)
	}
	if st.Writes != 1 || st.Suppressed != 1 || st.LastPath != fired.Path || st.LastReason != "api" {
		t.Fatalf("bundle status = %+v", st)
	}
}

// TestLedgerTailRejectsOutOfRangeN: satellite contract — out-of-range n
// is a 400, not a silent clamp.
func TestLedgerTailRejectsOutOfRangeN(t *testing.T) {
	_, srv := newTestOperator(t)
	for _, n := range []string{"0", "-3", fmt.Sprint(MaxLedgerTail + 1)} {
		resp, err := http.Get(srv.URL + "/api/v1/ledger/tail?n=" + n)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("n=%s → %d, want 400", n, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/api/v1/ledger/tail?n=" + fmt.Sprint(MaxLedgerTail))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("n=%d → %d, want 200", MaxLedgerTail, resp.StatusCode)
	}
}

// TestReadBundleRejectsGarbage: a non-archive and an archive without a
// manifest are both corrupt-bundle errors.
func TestReadBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundleFrom(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Fatal("garbage accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.tar.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// A valid but empty gzip stream: no manifest.
	if _, err := f.Write([]byte{0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadBundle(path); err == nil {
		t.Fatal("manifest-less archive accepted")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
