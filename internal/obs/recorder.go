package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the flight recorder. Every kind a hook
// records is named here, mirroring the metric- and span-name
// discipline: enkidebug switches on these strings when it rebuilds an
// incident timeline from a bundle.
const (
	// EventWireFrame is one batch frame encoded or decoded (Action is
	// the traffic direction, Codec the negotiated codec, N the messages
	// in the frame, Bytes the on-wire frame size).
	EventWireFrame = "wire.frame"
	// EventFault is one fault-plan hit on a shard link (Action is the
	// injected FaultAction, N the zero-based message index it struck).
	EventFault = "fault"
	// EventPhase is a protocol phase edge on the center (Action "start"
	// with N = members polled, or "deadline" with N = households still
	// dark when the phase deadline expired).
	EventPhase = "phase"
	// EventRetry is one agent reconnect attempt (N = attempt number).
	EventRetry = "retry"
	// EventResume is a resumed session (Action is the observing side).
	EventResume = "resume"
	// EventReplay is a replayed phase backlog (N = messages replayed).
	EventReplay = "replay"
	// EventDark is a household going dark mid-day (N = household ID).
	EventDark = "dark"
	// EventShardDay is one shard's settled day (Action "ok",
	// "degraded", or "failed"; N = households settled).
	EventShardDay = "shard.day"
	// EventDay is a settled day on a center or cluster (Action "ok" or
	// "degraded"; N = households settled).
	EventDay = "day"
	// EventLedger is one audit-ledger append (Bytes = encoded length).
	EventLedger = "ledger.append"
	// EventRuntime is a periodic runtime snapshot (N = goroutines,
	// Bytes = heap bytes in use, Val = last GC pause in ms). Runtime
	// state is wall-clock fact, so the kind is determinism-exempt.
	EventRuntime = "runtime"
	// EventTrigger is a debug-bundle capture (Action = reason). Fires
	// on wall-clock breaches, so the kind is determinism-exempt.
	EventTrigger = "trigger"
)

// IsTimingEvent reports whether the event kind records wall-clock
// facts (runtime snapshots, bundle triggers) that the Workers:1 ≡
// Workers:N determinism contract exempts — the recorder analogue of
// IsTimingMetric's "_ms" rule.
func IsTimingEvent(kind string) bool {
	return kind == EventRuntime || kind == EventTrigger
}

// Event is one flight-recorder entry. Every field except TimeNS is a
// pure function of the settled work — the capture clock is exempt from
// the determinism contract exactly as "_ms" metric series are — so the
// multiset of event identities matches across worker counts. Fields
// are fixed scalars (no maps) so recording never allocates.
type Event struct {
	TimeNS  int64   `json:"timeNs"`
	Kind    string  `json:"kind"`
	Day     int     `json:"day,omitempty"`
	Shard   int     `json:"shard"` // -1 when not shard-scoped
	Phase   string  `json:"phase,omitempty"`
	Codec   string  `json:"codec,omitempty"`
	Action  string  `json:"action,omitempty"`
	N       int     `json:"n,omitempty"`
	Bytes   int     `json:"bytes,omitempty"`
	Val     float64 `json:"val,omitempty"`
	TraceID string  `json:"traceId,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Identity renders the timing-free identity of an event — every field
// but the capture timestamp — for the determinism tests' multiset
// comparison across worker counts.
func (e Event) Identity() string {
	return fmt.Sprintf("%s day=%d shard=%d phase=%s codec=%s action=%s n=%d bytes=%d val=%g trace=%s err=%s",
		e.Kind, e.Day, e.Shard, e.Phase, e.Codec, e.Action, e.N, e.Bytes, e.Val, e.TraceID, e.Err)
}

// DefaultEventCapacity bounds a recorder's retained events unless
// SetCapacity overrides it — enough for several days of cluster wire
// traffic while keeping the resident ring a few MiB at most.
const DefaultEventCapacity = 1 << 14

// Recorder is the flight recorder: a bounded in-memory ring of recent
// Events. The zero value is a disabled recorder whose Record is a
// near-free atomic load, so instrumented hot paths cost nothing until
// an operator turns capture on; when the ring is full the oldest event
// is overwritten and enki_obs_recorder_dropped_total incremented.
type Recorder struct {
	enabled atomic.Bool
	mu      sync.Mutex
	ring    []Event
	head    int  // next overwrite position once the ring is full
	full    bool // the ring has wrapped at least once
	cap     int  // 0 means DefaultEventCapacity

	// Cached counter handles, refreshed when the default registry's
	// generation changes (Reset invalidates outstanding handles).
	gen             uint64
	events, dropped *Counter
}

var defaultRecorder Recorder

// DefaultRecorder returns the process-wide flight recorder the
// netproto hooks record into.
func DefaultRecorder() *Recorder { return &defaultRecorder }

// NewRecorder returns a fresh, disabled recorder (tests and benchmarks
// use private instances to stay isolated from the process-wide ring).
func NewRecorder() *Recorder { return &Recorder{} }

// Enable turns event capture on.
func (r *Recorder) Enable() { r.enabled.Store(true) }

// Disable turns event capture off (already-captured events remain).
func (r *Recorder) Disable() { r.enabled.Store(false) }

// Enabled reports whether events are being captured.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetCapacity bounds the number of retained events (n <= 0 restores
// DefaultEventCapacity). Call it before capture starts; shrinking a
// ring that already holds more events is not supported.
func (r *Recorder) SetCapacity(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	r.cap = n
}

// capacity returns the effective ring size; callers hold r.mu.
func (r *Recorder) capacity() int {
	if r.cap == 0 {
		return DefaultEventCapacity
	}
	return r.cap
}

// Reset discards all captured events (capture state is unchanged).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = nil
	r.head = 0
	r.full = false
}

// Record captures one event, stamping the capture time when the caller
// left it zero. Disabled recorders return after one atomic load; when
// enabled the steady state is a mutex, a ring write, and two cached
// counter increments — zero allocations once the ring is warm.
func (r *Recorder) Record(e Event) {
	if r == nil || !r.enabled.Load() {
		return
	}
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	if g := Default().Generation(); r.events == nil || g != r.gen {
		r.gen = g
		r.events = Default().Counter(MetricObsRecorderEvents)
		r.dropped = Default().Counter(MetricObsRecorderDropped)
	}
	c := r.capacity()
	if !r.full && len(r.ring) < c {
		if cap(r.ring) < c {
			grown := make([]Event, len(r.ring), c)
			copy(grown, r.ring)
			r.ring = grown
		}
		r.ring = append(r.ring, e)
		r.events.Inc()
		r.mu.Unlock()
		return
	}
	r.full = true
	r.ring[r.head] = e
	r.head = (r.head + 1) % c
	r.events.Inc()
	r.dropped.Inc()
	r.mu.Unlock()
}

// SampleRuntime captures one EventRuntime snapshot: live goroutines,
// heap bytes in use, and the most recent GC pause in milliseconds.
func (r *Recorder) SampleRuntime() {
	if r == nil || !r.enabled.Load() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var pauseMS float64
	if ms.NumGC > 0 {
		pauseMS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	r.Record(Event{
		Kind:  EventRuntime,
		Shard: -1,
		N:     runtime.NumGoroutine(),
		Bytes: int(ms.HeapAlloc),
		Val:   pauseMS,
	})
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return r.capacity()
	}
	return len(r.ring)
}

// Events returns a copy of the retained events in capture order
// without draining the ring, so a bundle capture never erases the
// recorder another trigger would dump.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.head:]...)
		out = append(out, r.ring[:r.head]...)
		return out
	}
	return append(out, r.ring...)
}

// Identities returns the sorted timing-free identities of the retained
// deterministic events (IsTimingEvent kinds are skipped) — the multiset
// the determinism tests compare across worker counts.
func (r *Recorder) Identities() []string {
	events := r.Events()
	out := make([]string, 0, len(events))
	for _, e := range events {
		if IsTimingEvent(e.Kind) {
			continue
		}
		out = append(out, e.Identity())
	}
	sort.Strings(out)
	return out
}

// WriteJSONL writes the retained events, one JSON object per line, in
// capture order, without draining the ring.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvents loads an event JSONL stream (the WriteJSONL format).
// Blank lines are skipped; a corrupt or truncated final line — the
// signature of a crash during capture — is skipped rather than failing
// the dump, but corruption followed by further valid events is an
// error (same recovery contract as ReadSpans and ReadJournal).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	var pending error
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			if pending != nil {
				return nil, pending
			}
			pending = fmt.Errorf("obs: event line %d: %w", line, err)
			continue
		}
		if pending != nil {
			return nil, pending
		}
		out = append(out, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("obs: read events: %w", err)
	}
	return out, nil
}
