package obs

import (
	"flag"
	"strings"
	"testing"
)

func TestLogFlagsJSONFormat(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	opts := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	logger, err := opts.Apply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hello", "k", 1)
	out := buf.String()
	if !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, `"level":"DEBUG"`) {
		t.Errorf("json log output malformed: %q", out)
	}
	if Logger() != logger {
		t.Error("Apply should install the shared logger")
	}
}

func TestLogFlagsLevelFiltersText(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	opts := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "error"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	logger, err := opts.Apply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("quiet")
	logger.Error("loud")
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Errorf("level filter failed: %q", out)
	}
}

func TestLogFlagsRejectBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-log-level", "verbose"},
		{"-log-format", "xml"},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		opts := LogFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := opts.Apply(nil); err == nil {
			t.Errorf("Apply(%v) should fail", args)
		}
	}
}
