package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler builds the daemon introspection mux: Prometheus-text
// /metrics, a trivial /healthz, and the net/http/pprof profiling
// endpoints under /debug/pprof/.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			Logger().Error("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug listener; Close shuts it down.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0" listeners).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// ServeDebug starts the debug handler on addr (e.g. "127.0.0.1:0")
// in a background goroutine and returns the running server.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler(reg)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Error("debug server failed", "err", err)
		}
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}
