package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DayStatus is the operator view of the current settlement day — what
// /api/v1/day serves. Phase names follow the protocol kinds
// ("preference", "consumption", "payment") plus "settling", "settled",
// and "idle" between days.
type DayStatus struct {
	Day                 int     `json:"day"`
	Phase               string  `json:"phase"`
	DeadlineRemainingMS float64 `json:"deadlineRemainingMs"`
	Members             int     `json:"members"`
	Reported            int     `json:"reported"`
	Dark                int     `json:"dark"` // members with no reply this phase
	DaysSettled         uint64  `json:"daysSettled"`

	// Last settled day's aggregates. LastResidual is the Theorem 1
	// deviation Σp − ξ·κ, which a healthy mechanism keeps at zero.
	LastCost     float64 `json:"lastCost"`
	LastRevenue  float64 `json:"lastRevenue"`
	LastResidual float64 `json:"lastResidual"`
	LastPeak     float64 `json:"lastPeak"`
}

// ShardStatus is one shard's operator view — what /api/v1/shards
// serves, one element per shard. A single-neighborhood center reports
// itself as shard 0.
type ShardStatus struct {
	Shard        int     `json:"shard"`
	Healthy      bool    `json:"healthy"`
	Err          string  `json:"err,omitempty"`
	TraceID      string  `json:"traceId,omitempty"`
	LastDay      int     `json:"lastDay"`
	Households   int     `json:"households"`
	Settled      int     `json:"settled"`
	Absent       int     `json:"absent"`
	Substituted  int     `json:"substituted"`
	Cost         float64 `json:"cost"`
	Revenue      float64 `json:"revenue"`
	Residual     float64 `json:"residual"` // Σp − ξ·κ for the shard
	LastSettleMS float64 `json:"lastSettleMs"`
}

// StatusSource supplies the live day and shard state the operator API
// serves; the netproto Center and Cluster implement it.
type StatusSource interface {
	DayStatus() DayStatus
	ShardStatuses() []ShardStatus
}

// ReplicaStatus is one replica's operator view — what /api/v1/replicas
// serves, one element per replica of the settlement center's quorum
// set.
type ReplicaStatus struct {
	ID          int    `json:"id"`
	Role        string `json:"role"` // "leader", "follower", or "dead"
	Term        uint64 `json:"term"`
	CommitIndex uint64 `json:"commitIndex"`
	CommitLag   uint64 `json:"commitLag"` // held log length minus commit watermark
	Addr        string `json:"addr,omitempty"`
}

// ReplicaSetStatus is the whole quorum set's operator view: the
// current leader, its term, whether a majority of replicas is still
// live, and how many mid-day takeovers have happened.
type ReplicaSetStatus struct {
	Leader    int             `json:"leader"` // -1 when no quorum holds
	Term      uint64          `json:"term"`
	Quorum    bool            `json:"quorum"`
	Failovers uint64          `json:"failovers"`
	Replicas  []ReplicaStatus `json:"replicas"`
}

// ReplicaSource supplies replica-set health; the netproto ReplicaSet
// implements it.
type ReplicaSource interface {
	ReplicaStatuses() ReplicaSetStatus
}

// LedgerTailer serves the last n audit-ledger lines; the netproto
// Journal implements it. Lines are raw JSON (mechanism.LedgerEntry
// encodings) — obs stays dependency-free of the mechanism package.
type LedgerTailer interface {
	LedgerTail(n int) []json.RawMessage
}

// MaxLedgerTail is the largest n the ledger-tail surface serves — the
// journal's in-memory tail ring holds exactly this many entries, so a
// larger request cannot be answered honestly and /api/v1/ledger/tail
// rejects it with 400 rather than silently clamping. Debug bundles
// capture the full ring.
const MaxLedgerTail = 256

// Operator is the cluster-wide operator plane served beside /metrics:
// readiness distinct from liveness, the /api/v1 status endpoints, SLO
// burn rates, and the federated metrics view. Zero-value fields are
// simply absent from the API (their endpoints return 404), so a
// process wires up only the surfaces it has.
type Operator struct {
	Registry   *Registry
	Status     StatusSource
	Replicas   ReplicaSource // replica-set health, served at /api/v1/replicas
	Ledger     LedgerTailer
	Federation *Federation
	SLO        *SLOEngine
	Debug      *Trigger // debug-bundle trigger, served at /api/v1/debug/bundle

	ready atomic.Bool
	sloMu sync.Mutex // serializes SLOEngine.Sample across requests
}

// NewOperator returns an operator plane over reg (nil means the default
// registry), initially not ready.
func NewOperator(reg *Registry) *Operator {
	if reg == nil {
		reg = Default()
	}
	return &Operator{Registry: reg}
}

// SetReady flips /readyz between 503 (starting, draining) and 200.
func (o *Operator) SetReady(ready bool) { o.ready.Store(ready) }

// Ready reports the current readiness state.
func (o *Operator) Ready() bool { return o.ready.Load() }

// SampleSLO evaluates the SLO engine under the operator's sample lock
// (nil when no engine is wired). The /api/v1/slo handler and the
// debug-bundle trigger share it, so concurrent samples never
// interleave on the engine's ring.
func (o *Operator) SampleSLO(now time.Time) []ObjectiveStatus {
	if o == nil || o.SLO == nil {
		return nil
	}
	o.sloMu.Lock()
	defer o.sloMu.Unlock()
	return o.SLO.Sample(now)
}

// Handler builds the operator mux: the debug surface (/metrics,
// /healthz, pprof) plus /readyz and the /api/v1 endpoints.
func (o *Operator) Handler() http.Handler {
	mux := http.NewServeMux()
	o.register(mux)
	return mux
}

func (o *Operator) register(mux *http.ServeMux) {
	reg := o.Registry
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			Logger().Error("metrics write failed", "err", err)
		}
	})
	// /healthz is liveness: the process is up and serving. Readiness —
	// enrolled, cluster started, able to do useful work — is /readyz.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !o.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "starting")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/api/v1/day", func(w http.ResponseWriter, r *http.Request) {
		if o.Status == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, o.Status.DayStatus())
	})
	mux.HandleFunc("/api/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		if o.Status == nil {
			http.NotFound(w, r)
			return
		}
		shards := o.Status.ShardStatuses()
		if shards == nil {
			shards = []ShardStatus{}
		}
		writeJSON(w, shards)
	})
	mux.HandleFunc("/api/v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		if o.Replicas == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, o.Replicas.ReplicaStatuses())
	})
	mux.HandleFunc("/api/v1/ledger/tail", func(w http.ResponseWriter, r *http.Request) {
		if o.Ledger == nil {
			http.NotFound(w, r)
			return
		}
		n := 10
		if arg := r.URL.Query().Get("n"); arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 || v > MaxLedgerTail {
				http.Error(w, fmt.Sprintf("n must be an integer in [1, %d]", MaxLedgerTail), http.StatusBadRequest)
				return
			}
			n = v
		}
		tail := o.Ledger.LedgerTail(n)
		if tail == nil {
			tail = []json.RawMessage{}
		}
		writeJSON(w, tail)
	})
	mux.HandleFunc("/api/v1/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.SLO == nil {
			http.NotFound(w, r)
			return
		}
		statuses := o.SampleSLO(time.Now())
		writeJSON(w, SLOReport{Objectives: statuses, Windows: o.SLO.Windows(), Spec: o.SLO.Objectives()})
	})
	mux.HandleFunc("/api/v1/debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		if o.Debug == nil {
			http.NotFound(w, r)
			return
		}
		if r.Method == http.MethodPost {
			path, err := o.Debug.Fire("api")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if path == "" {
				http.Error(w, "bundle rate-limited", http.StatusTooManyRequests)
				return
			}
			writeJSON(w, struct {
				Path string `json:"path"`
			}{path})
			return
		}
		writeJSON(w, o.Debug.Status())
	})
	mux.HandleFunc("/api/v1/federation", func(w http.ResponseWriter, r *http.Request) {
		if o.Federation == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, o.Federation.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SLOReport is the /api/v1/slo response body (and a debug bundle's
// slo.json). Spec carries the objective definitions — thresholds,
// budgets, series — so an offline analyzer can compare the sampled
// state against what was promised.
type SLOReport struct {
	Objectives []ObjectiveStatus `json:"objectives"`
	Windows    []SLOWindow       `json:"windows"`
	Spec       []Objective       `json:"spec,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		Logger().Error("api encode failed", "err", err)
	}
}

// DebugHandler builds the historical daemon introspection mux:
// Prometheus-text /metrics, liveness /healthz, and the net/http/pprof
// endpoints — an Operator with no status sources, reporting ready
// (a bare debug surface has no start-up to gate on).
func DebugHandler(reg *Registry) http.Handler {
	op := NewOperator(reg)
	op.SetReady(true)
	return op.Handler()
}

// DebugServer is a running debug/operator listener; Close shuts it
// down.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0" listeners).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// ServeDebug starts the debug handler on addr (e.g. "127.0.0.1:0")
// in a background goroutine and returns the running server.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return serveHandler(addr, DebugHandler(reg))
}

// ServeOperator starts the full operator plane on addr in a background
// goroutine and returns the running server.
func ServeOperator(addr string, op *Operator) (*DebugServer, error) {
	return serveHandler(addr, op.Handler())
}

func serveHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Error("debug server failed", "err", err)
		}
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}
