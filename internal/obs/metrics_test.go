package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	// Exercised under -race in CI: 16 goroutines hammer one counter
	// and one labeled counter through the registry lookup path.
	reg := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Counter(MetricSolverNodesExpanded).Inc()
				reg.Counter(MetricSchedAllocateTotal, LabelScheduler, "enki-greedy").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter(MetricSolverNodesExpanded).Value(); got != goroutines*per {
		t.Errorf("plain counter = %d, want %d", got, goroutines*per)
	}
	if got := reg.Counter(MetricSchedAllocateTotal, LabelScheduler, "enki-greedy").Value(); got != 2*goroutines*per {
		t.Errorf("labeled counter = %d, want %d", got, 2*goroutines*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Errorf("gauge = %g after balanced adds, want 0", v)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// le semantics: a value exactly on a bound lands in that bucket.
	for _, v := range []float64{0, 0.5, 1} { // <= 1
		h.Observe(v)
	}
	for _, v := range []float64{1.0000001, 2} { // (1, 2]
		h.Observe(v)
	}
	h.Observe(3.7) // (2, 5]
	h.Observe(99)  // +Inf
	want := []uint64{3, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	wantSum := 0.0 + 0.5 + 1 + 1.0000001 + 2 + 3.7 + 99
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramQuantileAgainstExact(t *testing.T) {
	// 1000 uniform observations over (0, 10] with fine buckets: the
	// interpolated quantile must sit within one bucket width of the
	// exact empirical quantile.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i+1) / 10
	}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10.00
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		exact := 10 * q
		got := h.Quantile(q)
		if math.Abs(got-exact) > 0.1+1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g ± bucket width 0.1", q, got, exact)
		}
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("Quantile(1) = %g, want 10", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(100) // +Inf bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %g, want clamp to 2", got)
	}
}

func TestSnapshotDeterministicAcrossRegistrationOrder(t *testing.T) {
	build := func(order []int) Snapshot {
		reg := NewRegistry()
		ops := []func(){
			func() { reg.Counter(MetricSolverNodesExpanded).Add(7) },
			func() { reg.Gauge(MetricMechBudgetResidual).Set(1.5) },
			func() { reg.Histogram(MetricMechPaymentDollars, DollarBuckets).Observe(3) },
			func() { reg.Counter(MetricSchedAllocateTotal, LabelScheduler, "optimal").Inc() },
		}
		for _, i := range order {
			ops[i]()
		}
		return reg.Snapshot()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if diffs := a.DiffDeterministic(b); len(diffs) != 0 {
		t.Errorf("snapshots differ across registration order: %v", diffs)
	}
	var bufA, bufB strings.Builder
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Error("JSON snapshots differ across registration order")
	}
}

func TestDiffDeterministicSkipsTimingAndGauges(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Histogram(MetricSchedAllocateLatencyMS, LatencyBucketsMS).Observe(5)
	regB.Histogram(MetricSchedAllocateLatencyMS, LatencyBucketsMS).Observe(500)
	regA.Gauge(MetricParallelQueueDepth).Set(4)
	regB.Gauge(MetricParallelQueueDepth).Set(0)
	if diffs := regA.Snapshot().DiffDeterministic(regB.Snapshot()); len(diffs) != 0 {
		t.Errorf("timing histograms and gauges should be exempt, got %v", diffs)
	}
	regA.Counter(MetricNetDaysTotal).Inc()
	if diffs := regA.Snapshot().DiffDeterministic(regB.Snapshot()); len(diffs) != 1 {
		t.Errorf("counter mismatch should be reported, got %v", diffs)
	}
}

func TestLabelOrderCanonicalization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetMessagesTotal, "a", "1", "b", "2").Inc()
	reg.Counter(MetricNetMessagesTotal, "b", "2", "a", "1").Inc()
	if got := reg.Counter(MetricNetMessagesTotal, "a", "1", "b", "2").Value(); got != 2 {
		t.Errorf("label order should canonicalize to one series, got %d", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetMessagesTotal, LabelDirection, DirectionSent).Add(3)
	reg.Gauge(MetricMechDayPAR).Set(1.25)
	h := reg.Histogram(MetricMechPaymentDollars, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE enki_netproto_messages_total counter",
		`enki_netproto_messages_total{direction="sent"} 3`,
		"# TYPE enki_mechanism_day_par gauge",
		"enki_mechanism_day_par 1.25",
		"# TYPE enki_mechanism_payment_dollars histogram",
		`enki_mechanism_payment_dollars{le="1"} 1`,
		`enki_mechanism_payment_dollars{le="10"} 2`,
		`enki_mechanism_payment_dollars{le="+Inf"} 3`,
		"enki_mechanism_payment_dollars_sum 55.5",
		"enki_mechanism_payment_dollars_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

// TestWritePrometheusOneTypeLinePerFamily: multiple series of one
// metric family share a single # TYPE header.
func TestWritePrometheusOneTypeLinePerFamily(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetMessagesTotal, LabelDirection, DirectionSent).Inc()
	reg.Counter(MetricNetMessagesTotal, LabelDirection, DirectionReceived).Inc()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	header := "# TYPE enki_netproto_messages_total counter"
	if got := strings.Count(buf.String(), header); got != 1 {
		t.Errorf("TYPE header appears %d times, want 1:\n%s", got, buf.String())
	}
}

func TestRegistryReset(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricNetDaysTotal).Inc()
	reg.Reset()
	if got := reg.Counter(MetricNetDaysTotal).Value(); got != 0 {
		t.Errorf("counter after reset = %d, want 0", got)
	}
}
