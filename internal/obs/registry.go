package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent-safe collection of named metrics. Metrics
// are registered lazily: Counter/Gauge/Histogram return the existing
// metric for (name, labels) or create it. Labels are alternating
// key/value pairs, e.g. Counter(name, "scheduler", "enki-greedy").
//
// Names must come from the constants in names.go — CI greps for
// string-literal registrations outside internal/obs.
type Registry struct {
	mu         sync.RWMutex
	gen        atomic.Uint64
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// records into.
func Default() *Registry { return defaultRegistry }

// metricKey renders the canonical series identity: name{k="v",...}
// with labels sorted by key, so registration order never matters.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for (name, labels), creating it if new.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge for (name, labels), creating it if new.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds if new. The bounds of an existing histogram
// are not revalidated: a metric name maps to one bucket layout (see
// names.go).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	key := metricKey(name, labels)
	r.mu.RLock()
	h, ok := r.histograms[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[key] = h
	return h
}

// Reset drops every registered metric and advances the registry
// generation. Handles obtained before Reset keep working but are
// detached from the registry; instrumented code either re-looks metrics
// up per operation or caches handles keyed by Generation (the hot-path
// pattern internal/sched uses), so tests can Reset between runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen.Add(1)
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// Generation returns a counter that advances on every Reset. Hot paths
// that cache metric handles compare the generation they cached under
// against the current one and re-register when it moved, keeping cached
// handles coherent with test-time Resets without a per-operation map
// lookup (and its key-building allocations).
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// HistogramSnapshot is the exported state of one histogram series.
// Exemplars (the slowest traced observation per bucket) are a JSON-only
// extra: timing facts outside the determinism contract, so
// DiffDeterministic never compares them.
type HistogramSnapshot struct {
	Bounds    []float64  `json:"bounds"`
	Buckets   []uint64   `json:"buckets"` // len(Bounds)+1, last is +Inf
	Count     uint64     `json:"count"`
	Sum       float64    `json:"sum"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, with series sorted
// by key so the encoding is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		s.Histograms[k] = HistogramSnapshot{
			Bounds:    h.Bounds(),
			Buckets:   h.BucketCounts(),
			Count:     h.Count(),
			Sum:       h.Sum(),
			Exemplars: h.Exemplars(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Go's encoder sorts
// map keys, so the output is deterministic for a given state.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DiffDeterministic compares the deterministic portion of two
// snapshots: counters (exact), and non-timing histograms (bucket
// counts and totals exact, sums within a small relative tolerance to
// absorb float addition order). Timing histograms (IsTimingMetric) and
// gauges (instantaneous last-write values such as queue depth) are
// skipped. It returns a sorted list of human-readable differences,
// empty when the snapshots agree.
func (s Snapshot) DiffDeterministic(other Snapshot) []string {
	var diffs []string
	for _, k := range unionKeys(s.Counters, other.Counters) {
		a, aok := s.Counters[k]
		b, bok := other.Counters[k]
		if aok != bok || a != b {
			diffs = append(diffs, fmt.Sprintf("counter %s: %d vs %d", k, a, b))
		}
	}
	for _, k := range unionKeys(s.Histograms, other.Histograms) {
		if IsTimingMetric(k) {
			continue
		}
		a, aok := s.Histograms[k]
		b, bok := other.Histograms[k]
		if aok != bok {
			diffs = append(diffs, fmt.Sprintf("histogram %s: present %v vs %v", k, aok, bok))
			continue
		}
		if a.Count != b.Count {
			diffs = append(diffs, fmt.Sprintf("histogram %s count: %d vs %d", k, a.Count, b.Count))
		}
		for i := range a.Buckets {
			if i >= len(b.Buckets) || a.Buckets[i] != b.Buckets[i] {
				diffs = append(diffs, fmt.Sprintf("histogram %s bucket %d: counts differ", k, i))
				break
			}
		}
		if !almostEqual(a.Sum, b.Sum) {
			diffs = append(diffs, fmt.Sprintf("histogram %s sum: %g vs %g", k, a.Sum, b.Sum))
		}
	}
	sort.Strings(diffs)
	return diffs
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric
// family, the family's series grouped under it, sorted by key.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	family := ""
	for _, k := range unionKeys(s.Counters, nil) {
		if name := baseName(k); name != family {
			family = name
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		}
		fmt.Fprintf(&b, "%s %d\n", k, s.Counters[k])
	}
	family = ""
	for _, k := range unionKeys(s.Gauges, nil) {
		if name := baseName(k); name != family {
			family = name
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		}
		fmt.Fprintf(&b, "%s %s\n", k, formatValue(s.Gauges[k]))
	}
	family = ""
	for _, k := range unionKeys(s.Histograms, nil) {
		h := s.Histograms[k]
		if name := baseName(k); name != family {
			family = name
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s %d\n", withLabel(k, "le", formatValue(bound)), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(k, "le", "+Inf"), h.Count)
		fmt.Fprintf(&b, "%s %s\n", suffixKey(k, "_sum"), formatValue(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", suffixKey(k, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// baseName strips the label block from a series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// withLabel appends one more label to a series key.
func withLabel(key, k, v string) string {
	label := fmt.Sprintf("%s=%q", k, v)
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:len(key)-1] + "," + label + "}"
	}
	return key + "{" + label + "}"
}

// suffixKey appends a name suffix (e.g. _sum) before the label block.
func suffixKey(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// formatValue renders a sample value; %g keeps integer bounds compact
// (10, not 10.000000) while preserving precision for small latencies.
func formatValue(v float64) string { return fmt.Sprintf("%g", v) }
