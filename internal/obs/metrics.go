// Package obs is the repository's zero-dependency observability layer:
// an atomic metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus-text and JSON export, slog-based
// structured logging with a shared flag helper for the cmd/ binaries,
// lightweight span tracing exported as JSONL, and an HTTP debug
// handler serving /metrics, /healthz, and net/http/pprof.
//
// Determinism contract: the instrumented packages preserve PR 1's
// engine guarantee — counters and non-timing histogram bucket counts
// are bit-identical for any worker count, because every increment is
// an integer derived from the deterministic computation itself (nodes
// expanded, deferment slots, score buckets), never from wall clock or
// scheduling order. Timing histograms (name suffix "_ms") and gauges
// (last-write-wins instantaneous values) are exempt; Snapshot.
// DiffDeterministic encodes exactly this comparison.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe
// for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (last write wins). All
// methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations v with v <= Bounds[i], and one
// implicit +Inf bucket catches the rest. Bucket counts are exact
// atomic integers; Sum is an order-dependent float and therefore
// excluded from the bit-level determinism contract (compare it with a
// tolerance instead).
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    Gauge           // running Σv via atomic float add

	exMu      sync.Mutex
	exemplars []exemplar // lazily len(counts); slowest observation per bucket
}

// exemplar is the retained worst observation of one bucket.
type exemplar struct {
	value float64
	trace string
	set   bool
}

// Exemplar links a bucket's slowest retained observation to the trace
// that produced it, so an operator can jump from a latency histogram in
// /metrics JSON straight to the worst day's trace in enkitrace.
type Exemplar struct {
	Bucket  int     `json:"bucket"` // index into Buckets; the last is +Inf
	Value   float64 `json:"value"`
	TraceID string  `json:"traceId"`
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds. It panics on empty or unsorted bounds: bucket layouts
// are compile-time constants (see names.go), not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le-bucket
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// keeps it as the bucket's exemplar if it is the slowest observation the
// bucket has seen. Exemplars ride on Snapshot (JSON only, never the
// Prometheus text format) and are excluded from the determinism
// contract — they identify wall-clock extremes, which are timing facts.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.counts))
	}
	if e := &h.exemplars[i]; !e.set || v > e.value {
		*e = exemplar{value: v, trace: traceID, set: true}
	}
	h.exMu.Unlock()
}

// Exemplars returns the retained per-bucket exemplars in bucket order.
// Nil when no observation ever carried a trace ID.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i]; e.set {
			out = append(out, Exemplar{Bucket: i, Value: e.value, TraceID: e.trace})
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts, including the final
// +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank, assuming
// non-negative observations (the lower edge of the first bucket is 0).
// Observations landing in the +Inf bucket clamp to the largest finite
// bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range h.bounds {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (b-lower)*(rank-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
