package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

type fakeStatus struct{}

func (fakeStatus) DayStatus() DayStatus {
	return DayStatus{Day: 3, Phase: "consumption", Members: 8, Reported: 6, Dark: 2, DaysSettled: 3}
}

func (fakeStatus) ShardStatuses() []ShardStatus {
	return []ShardStatus{
		{Shard: 0, Healthy: true, LastDay: 3, Households: 4, Settled: 4},
		{Shard: 1, Healthy: false, Err: "link down", LastDay: 2, Households: 4, Substituted: 1},
	}
}

type fakeLedger struct{ lines []string }

func (l fakeLedger) LedgerTail(n int) []json.RawMessage {
	if n > len(l.lines) {
		n = len(l.lines)
	}
	out := make([]json.RawMessage, 0, n)
	for _, s := range l.lines[len(l.lines)-n:] {
		out = append(out, json.RawMessage(s))
	}
	return out
}

func newTestOperator(t *testing.T) (*Operator, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	eng, err := NewSLOEngine(reg, DefaultObjectives())
	if err != nil {
		t.Fatal(err)
	}
	op := NewOperator(reg)
	op.Status = fakeStatus{}
	op.Ledger = fakeLedger{lines: []string{`{"day":1}`, `{"day":2}`, `{"day":3}`}}
	op.Federation = NewFederation(reg)
	op.SLO = eng
	srv := httptest.NewServer(op.Handler())
	t.Cleanup(srv.Close)
	return op, srv
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestOperatorReadyzGatesOnReadiness(t *testing.T) {
	op, srv := newTestOperator(t)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", resp.StatusCode)
	}
	// Liveness stays 200 the whole time.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while starting = %d, want 200", resp.StatusCode)
	}
	op.SetReady(true)
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after SetReady = %d, want 200", resp.StatusCode)
	}
}

func TestOperatorDayAndShards(t *testing.T) {
	_, srv := newTestOperator(t)
	var day DayStatus
	if resp := getJSON(t, srv.URL+"/api/v1/day", &day); resp.StatusCode != 200 {
		t.Fatalf("/api/v1/day = %d", resp.StatusCode)
	}
	if day.Day != 3 || day.Phase != "consumption" || day.Dark != 2 {
		t.Fatalf("day status = %+v", day)
	}
	var shards []ShardStatus
	getJSON(t, srv.URL+"/api/v1/shards", &shards)
	if len(shards) != 2 || shards[1].Err != "link down" || shards[1].Substituted != 1 {
		t.Fatalf("shard statuses = %+v", shards)
	}
}

func TestOperatorLedgerTail(t *testing.T) {
	_, srv := newTestOperator(t)
	var tail []struct {
		Day int `json:"day"`
	}
	getJSON(t, srv.URL+"/api/v1/ledger/tail?n=2", &tail)
	if len(tail) != 2 || tail[0].Day != 2 || tail[1].Day != 3 {
		t.Fatalf("ledger tail = %+v", tail)
	}
	resp, err := http.Get(srv.URL + "/api/v1/ledger/tail?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", resp.StatusCode)
	}
}

func TestOperatorSLOEndpoint(t *testing.T) {
	_, srv := newTestOperator(t)
	var report SLOReport
	getJSON(t, srv.URL+"/api/v1/slo", &report)
	if len(report.Objectives) != len(DefaultObjectives()) {
		t.Fatalf("slo objectives = %d, want %d", len(report.Objectives), len(DefaultObjectives()))
	}
	for _, o := range report.Objectives {
		if !o.Healthy {
			t.Fatalf("idle registry must be healthy, got %+v", o)
		}
		if len(o.Burn) != len(DefaultSLOWindows()) {
			t.Fatalf("objective %s burn windows = %d", o.Name, len(o.Burn))
		}
	}
}

func TestOperatorFederationEndpoint(t *testing.T) {
	op, srv := newTestOperator(t)
	op.Federation.Report(&MetricsReport{Source: "shard/0000", Snapshot: shardSnapshot(2, 0, 1, "t")})
	var fs FederatedSnapshot
	getJSON(t, srv.URL+"/api/v1/federation", &fs)
	if fs.Merged.Counters[MetricClusterShardsSettled] != 2 {
		t.Fatalf("federation endpoint merged = %+v", fs.Merged.Counters)
	}
}

func TestOperatorAbsentSurfacesReturn404(t *testing.T) {
	op := NewOperator(NewRegistry())
	srv := httptest.NewServer(op.Handler())
	defer srv.Close()
	for _, path := range []string{"/api/v1/day", "/api/v1/shards", "/api/v1/ledger/tail", "/api/v1/slo", "/api/v1/federation"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with no source = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestExemplarsKeepSlowestPerBucket(t *testing.T) {
	h := NewHistogram(LatencyBucketsMS)
	h.ObserveExemplar(2.1, "slowest")
	h.ObserveExemplar(2.9, "slower")
	h.ObserveExemplar(0.5, "fast") // lands in the 1ms bucket, not the 3ms one
	h.Observe(2.8)                 // untraced observations never displace exemplars
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", ex)
	}
	if ex[0].TraceID != "fast" || ex[0].Value != 0.5 {
		t.Fatalf("fast-bucket exemplar = %+v", ex[0])
	}
	if ex[1].TraceID != "slower" || ex[1].Value != 2.9 {
		t.Fatalf("bucket exemplar = %+v, want the 2.9 trace", ex[1])
	}
}
