package stats

import (
	"math"
	"testing"

	"enki/internal/dist"
)

func TestMannWhitneyRejectsEmpty(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err == nil {
		t.Error("empty sample 1 should be rejected")
	}
	if _, err := MannWhitneyU([]float64{1}, nil); err == nil {
		t.Error("empty sample 2 should be rejected")
	}
}

func TestMannWhitneyUStatistics(t *testing.T) {
	// Hand-computed example without ties:
	// sample1 = {1, 3, 5}, sample2 = {2, 4, 6}.
	// Ranks: 1→1, 2→2, 3→3, 4→4, 5→5, 6→6. R1 = 9, U1 = 9 − 6 = 3, U2 = 6.
	res, err := MannWhitneyU([]float64{1, 3, 5}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.U1 != 3 || res.U2 != 6 || res.U != 3 {
		t.Errorf("U1=%g U2=%g U=%g, want 3, 6, 3", res.U1, res.U2, res.U)
	}
	if res.P < 0.5 {
		t.Errorf("interleaved samples should not be significant: p = %g", res.P)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	s := []float64{4, 4, 4, 4}
	res, err := MannWhitneyU(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("identical constant samples should give p = 1, got %g", res.P)
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	// Completely separated samples of the paper's size (n = 20) must be
	// overwhelmingly significant — the Table III "Overall" situation.
	lo := make([]float64, 20)
	hi := make([]float64, 20)
	for i := range lo {
		lo[i] = float64(i)       // 0..19
		hi[i] = float64(i) + 100 // 100..119
	}
	res, err := MannWhitneyU(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("fully separated samples should give U = 0, got %g", res.U)
	}
	if res.P >= 0.0001 {
		t.Errorf("fully separated samples: p = %g, want < 0.0001", res.P)
	}
	if FormatP(res.P) != "< 0.0001" {
		t.Errorf("FormatP = %q, want \"< 0.0001\"", FormatP(res.P))
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []float64{2, 7, 1, 8, 2, 8}
	r1, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MannWhitneyU(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r1.P, r2.P, 1e-12) {
		t.Errorf("p-value not symmetric: %g vs %g", r1.P, r2.P)
	}
	if !almost(r1.U, r2.U, 1e-12) {
		t.Errorf("U not symmetric: %g vs %g", r1.U, r2.U)
	}
}

func TestMannWhitneyWithTies(t *testing.T) {
	// Ties across groups exercise the mid-rank path and tie correction.
	a := []float64{1, 2, 2, 3}
	b := []float64{2, 3, 3, 4}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U1+res.U2 != float64(len(a)*len(b)) {
		t.Errorf("U1 + U2 = %g, want n1·n2 = %d", res.U1+res.U2, len(a)*len(b))
	}
	if res.P <= 0 || res.P > 1 {
		t.Errorf("p = %g outside (0, 1]", res.P)
	}
}

// TestMannWhitneyFalsePositiveRate: under the null (same distribution),
// the test should reject at roughly the nominal rate.
func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	rng := dist.New(99)
	const trials = 2000
	rejects := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.08 {
		t.Errorf("false positive rate %g too high for α = 0.05", rate)
	}
}

// TestMannWhitneyPower: a real location shift of the paper's magnitude
// should usually be detected at n = 20.
func TestMannWhitneyPower(t *testing.T) {
	rng := dist.New(123)
	const trials = 500
	detected := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = rng.NormRange(0, 1)
			b[i] = rng.NormRange(1.5, 1)
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			detected++
		}
	}
	if power := float64(detected) / trials; power < 0.9 {
		t.Errorf("power %g too low for a 1.5σ shift at n = 20", power)
	}
}

func TestFormatP(t *testing.T) {
	if got := FormatP(0.0532); got != "0.0532" {
		t.Errorf("FormatP(0.0532) = %q", got)
	}
	if got := FormatP(0.00005); got != "< 0.0001" {
		t.Errorf("FormatP(0.00005) = %q", got)
	}
}

func TestMannWhitneyZFinite(t *testing.T) {
	res, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Z) || math.IsInf(res.Z, 0) {
		t.Errorf("z = %g must be finite", res.Z)
	}
}
