// Package stats implements the statistical machinery the paper's
// evaluation relies on: descriptive statistics with 95% confidence
// intervals (Figures 4-6 error bars) and the Mann-Whitney U test
// (Table III and Figure 8).
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or 0
// when fewer than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SEM returns the standard error of the mean.
func SEM(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (1-based; index 0 unused).
var tCritical95 = []float64{
	math.NaN(),
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% critical value of Student's t
// distribution with df degrees of freedom (normal 1.96 for df > 30).
func TCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df < len(tCritical95) {
		return tCritical95[df]
	}
	return 1.96
}

// Interval is a symmetric confidence interval around a sample mean.
type Interval struct {
	Mean float64 // point estimate
	Half float64 // half-width: the interval is Mean ± Half
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.Half }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.Half }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo() && x <= iv.Hi() }

// CI95 returns the 95% Student-t confidence interval for the mean of
// xs, the quantity plotted as error bars in Figures 4-6.
func CI95(xs []float64) Interval {
	n := len(xs)
	if n == 0 {
		return Interval{}
	}
	if n == 1 {
		return Interval{Mean: xs[0]}
	}
	return Interval{Mean: Mean(xs), Half: TCritical95(n-1) * SEM(xs)}
}

// NormalCDF returns Φ(z), the standard normal cumulative distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
