package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almost(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %g, want %g", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic dataset is 32/7.
	if got := Variance(xs); !almost(got, 32.0/7, 1e-9) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-9) {
		t.Errorf("StdDev = %g", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("variance of a single observation should be 0")
	}
	if Variance(nil) != 0 {
		t.Error("variance of empty slice should be 0")
	}
}

func TestVarianceNonnegative(t *testing.T) {
	prop := func(raw [8]int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("variance must be nonnegative: %v", err)
	}
}

func TestSEM(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := StdDev(xs) / math.Sqrt(5)
	if got := SEM(xs); !almost(got, want, 1e-12) {
		t.Errorf("SEM = %g, want %g", got, want)
	}
	if SEM(nil) != 0 {
		t.Error("SEM of empty slice should be 0")
	}
}

func TestTCritical95(t *testing.T) {
	tests := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{9, 2.262}, // 10 rounds per population in Figs. 4-6
		{19, 2.093},
		{30, 2.042},
		{100, 1.96},
	}
	for _, tt := range tests {
		if got := TCritical95(tt.df); !almost(got, tt.want, 1e-9) {
			t.Errorf("TCritical95(%d) = %g, want %g", tt.df, got, tt.want)
		}
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 13, 10, 12, 11, 10, 12}
	iv := CI95(xs)
	if !almost(iv.Mean, Mean(xs), 1e-12) {
		t.Errorf("CI mean = %g, want %g", iv.Mean, Mean(xs))
	}
	wantHalf := TCritical95(9) * SEM(xs)
	if !almost(iv.Half, wantHalf, 1e-12) {
		t.Errorf("CI half-width = %g, want %g", iv.Half, wantHalf)
	}
	if !iv.Contains(iv.Mean) {
		t.Error("interval must contain its own mean")
	}
	if iv.Lo() >= iv.Hi() {
		t.Error("interval bounds inverted")
	}
	single := CI95([]float64{7})
	if single.Mean != 7 || single.Half != 0 {
		t.Errorf("single-observation CI = %+v, want {7 0}", single)
	}
	if got := CI95(nil); got != (Interval{}) {
		t.Errorf("empty CI = %+v, want zero", got)
	}
}

func TestNormalCDF(t *testing.T) {
	tests := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almost(got, tt.want, 1e-3) {
			t.Errorf("NormalCDF(%g) = %g, want %g", tt.z, got, tt.want)
		}
	}
}
