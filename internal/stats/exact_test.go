package stats

import (
	"math"
	"testing"

	"enki/internal/dist"
)

func TestExactRejectsEmptyAndTies(t *testing.T) {
	if _, err := MannWhitneyUExact(nil, []float64{1}); err == nil {
		t.Error("empty sample should be rejected")
	}
	if _, err := MannWhitneyUExact([]float64{1, 2}, []float64{2, 3}); err == nil {
		t.Error("tied samples should be rejected")
	}
	if _, err := MannWhitneyUExact([]float64{1, 1}, []float64{3, 4}); err == nil {
		t.Error("within-sample ties should be rejected")
	}
}

// TestExactSmallTable checks hand-computed exact p-values for tiny
// samples, where the null distribution is easy to enumerate by hand.
func TestExactSmallTable(t *testing.T) {
	// n1 = n2 = 2, sample1 holds the two smallest values: R1 = 3, the
	// most extreme of C(4,2) = 6 assignments; P(R1 ≤ 3) = 1/6, two-sided
	// p = 2/6.
	res, err := MannWhitneyUExact([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-2.0/6) > 1e-12 {
		t.Errorf("p = %g, want 1/3", res.P)
	}
	if res.U != 0 {
		t.Errorf("U = %g, want 0", res.U)
	}

	// n1 = n2 = 3, fully separated: R1 = 6, 1 of C(6,3) = 20; p = 2/20.
	res, err = MannWhitneyUExact([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-0.1) > 1e-12 {
		t.Errorf("p = %g, want 0.1", res.P)
	}

	// Perfectly interleaved samples: no evidence, p should be large.
	res, err = MannWhitneyUExact([]float64{1, 3, 5}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("interleaved p = %g, want ≥ 0.5", res.P)
	}
}

// TestExactMatchesNormalApproximation: at the paper's sample sizes the
// exact and normal-approximate p-values agree closely.
func TestExactMatchesNormalApproximation(t *testing.T) {
	rng := dist.New(31)
	for trial := 0; trial < 50; trial++ {
		s1 := make([]float64, 16)
		s2 := make([]float64, 16)
		for i := range s1 {
			s1[i] = rng.Float64()
			s2[i] = rng.Float64() + 0.3*rng.Float64()
		}
		exact, err := MannWhitneyUExact(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := MannWhitneyU(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.P-approx.P) > 0.03 {
			t.Errorf("trial %d: exact p %g vs approx p %g differ by more than 0.03",
				trial, exact.P, approx.P)
		}
		if exact.U != approx.U {
			t.Errorf("trial %d: U statistics disagree: %g vs %g", trial, exact.U, approx.U)
		}
	}
}

// TestExactSymmetry: swapping the samples leaves the p-value unchanged.
func TestExactSymmetry(t *testing.T) {
	s1 := []float64{0.1, 0.7, 1.3, 2.2, 3.1}
	s2 := []float64{0.4, 0.9, 1.8, 2.9}
	a, err := MannWhitneyUExact(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MannWhitneyUExact(s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.P-b.P) > 1e-12 {
		t.Errorf("exact p not symmetric: %g vs %g", a.P, b.P)
	}
}

// TestExactNullCalibration: under the null the exact test's rejection
// rate is at most the nominal level (exact tests are conservative for
// discrete statistics).
func TestExactNullCalibration(t *testing.T) {
	rng := dist.New(77)
	const trials = 1500
	rejects := 0
	for trial := 0; trial < trials; trial++ {
		s1 := make([]float64, 10)
		s2 := make([]float64, 10)
		for i := range s1 {
			s1[i] = rng.Float64()
			s2[i] = rng.Float64()
		}
		res, err := MannWhitneyUExact(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejects++
		}
	}
	if rate := float64(rejects) / trials; rate > 0.06 {
		t.Errorf("exact test rejected %g under the null at α = 0.05", rate)
	}
}
