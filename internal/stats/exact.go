package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyUExact computes the exact two-sided p-value of the
// Mann-Whitney U test by dynamic programming over the rank-sum
// distribution under the null (all C(n1+n2, n1) rank assignments
// equally likely). It requires tie-free samples — with ties the exact
// null distribution is data-dependent and the tie-corrected normal
// approximation of MannWhitneyU should be used instead.
//
// The DP counts, for each k and s, the number of ways to choose k of
// the ranks 1..N with sum s; complexity O(N·n1·Σranks), comfortably
// fast for the paper's sample sizes (n = 16..20 per group).
func MannWhitneyUExact(sample1, sample2 []float64) (MannWhitneyResult, error) {
	n1, n2 := len(sample1), len(sample2)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, fmt.Errorf("stats: mann-whitney needs non-empty samples (n1=%d, n2=%d)", n1, n2)
	}
	if hasTies(sample1, sample2) {
		return MannWhitneyResult{}, fmt.Errorf("stats: exact mann-whitney requires tie-free samples; use MannWhitneyU")
	}

	// Rank sum of sample 1 in the combined ordering.
	type obs struct {
		value float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range sample1 {
		all = append(all, obs{v, 1})
	}
	for _, v := range sample2 {
		all = append(all, obs{v, 2})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].value < all[j].value })
	var r1 int
	for i, o := range all {
		if o.group == 1 {
			r1 += i + 1
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := float64(r1) - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u := math.Min(u1, u2)

	// ways[k][s]: number of k-subsets of {1..N} with rank sum s.
	n := n1 + n2
	maxSum := n * (n + 1) / 2
	ways := make([][]float64, n1+1)
	for k := range ways {
		ways[k] = make([]float64, maxSum+1)
	}
	ways[0][0] = 1
	for rank := 1; rank <= n; rank++ {
		for k := min(rank, n1); k >= 1; k-- {
			row, prev := ways[k], ways[k-1]
			for s := maxSum; s >= rank; s-- {
				row[s] += prev[s-rank]
			}
		}
	}

	// P(R1 ≤ r1) and P(R1 ≥ r1) under the null.
	var total, le, ge float64
	for s, w := range ways[n1] {
		total += w
		if s <= r1 {
			le += w
		}
		if s >= r1 {
			ge += w
		}
	}
	p := 2 * math.Min(le, ge) / total
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U1: u1, U2: u2, U: u, P: p}, nil
}

// hasTies reports whether any value repeats within or across samples.
func hasTies(sample1, sample2 []float64) bool {
	seen := make(map[float64]bool, len(sample1)+len(sample2))
	for _, v := range sample1 {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	for _, v := range sample2 {
		if seen[v] {
			return true
		}
		seen[v] = true
	}
	return false
}
