package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitneyResult is the outcome of a two-sided Mann-Whitney U test,
// the test Section VII applies in Table III and Figure 8.
type MannWhitneyResult struct {
	U1 float64 // U statistic of sample 1
	U2 float64 // U statistic of sample 2
	U  float64 // min(U1, U2), the test statistic
	Z  float64 // normal approximation z-score (tie-corrected, continuity-corrected)
	P  float64 // two-sided p-value
}

// Significant reports whether the test rejects the null at level alpha.
func (r MannWhitneyResult) Significant(alpha float64) bool { return r.P < alpha }

// MannWhitneyU runs the two-sided Mann-Whitney U test on two independent
// samples using the tie-corrected normal approximation with continuity
// correction. The paper's samples have n = 16..20 per group, where the
// normal approximation is the standard choice.
func MannWhitneyU(sample1, sample2 []float64) (MannWhitneyResult, error) {
	n1, n2 := len(sample1), len(sample2)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, fmt.Errorf("stats: mann-whitney needs non-empty samples (n1=%d, n2=%d)", n1, n2)
	}

	type obs struct {
		value float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range sample1 {
		all = append(all, obs{v, 1})
	}
	for _, v := range sample2 {
		all = append(all, obs{v, 2})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].value < all[j].value })

	// Assign mid-ranks to ties and accumulate the tie correction term
	// Σ(t³ − t).
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].value == all[i].value {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	var r1 float64
	for i, o := range all {
		if o.group == 1 {
			r1 += ranks[i]
		}
	}

	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u := math.Min(u1, u2)

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	varU := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U1: u1, U2: u2, U: u}
	if varU <= 0 {
		// All observations identical: no evidence against the null.
		res.P = 1
		return res, nil
	}
	// Continuity correction toward the mean.
	num := u - mu
	switch {
	case num > 0.5:
		num -= 0.5
	case num < -0.5:
		num += 0.5
	default:
		num = 0
	}
	res.Z = num / math.Sqrt(varU)
	res.P = 2 * NormalCDF(-math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// FormatP renders a p-value the way the paper's tables do: values below
// 0.0001 print as "< 0.0001", others with four decimals.
func FormatP(p float64) string {
	if p < 0.0001 {
		return "< 0.0001"
	}
	return fmt.Sprintf("%.4f", p)
}
